package sim

import (
	"testing"

	"repro/internal/clock"
)

// TestAtTimerOnlyInstant: a scheduled callback fires at its exact
// picosecond even when no clock has an edge there, and the instant counts
// as executed.
func TestAtTimerOnlyInstant(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	a := &counter{name: "a", clk: clk}
	eng.Add(a)
	var firedAt clock.Time = -1
	eng.At(1500, func() { firedAt = eng.Now() })
	instants := eng.Run(3000)
	if firedAt != 1500 {
		t.Errorf("callback fired at %d, want 1500", firedAt)
	}
	// Edges at 1000, 2000, 3000 plus the timer-only instant 1500.
	if instants != 4 {
		t.Errorf("instants = %d, want 4", instants)
	}
	if a.updates != 3 {
		t.Errorf("component ran %d edges, want 3 — the timer instant must not dispatch components", a.updates)
	}
}

// TestAtOrdering: callbacks run in time order, and same-instant callbacks
// in registration order.
func TestAtOrdering(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	eng.Add(&counter{name: "a", clk: clk})
	var order []string
	eng.At(1500, func() { order = append(order, "a") })
	eng.At(1500, func() { order = append(order, "b") })
	eng.At(700, func() { order = append(order, "c") })
	eng.Run(2000)
	if len(order) != 3 || order[0] != "c" || order[1] != "a" || order[2] != "b" {
		t.Errorf("callback order %v, want [c a b]", order)
	}
}

// TestAtClampsPastTimes: scheduling at or before the current instant fires
// at the next executed instant instead of being dropped or rewinding time.
func TestAtClampsPastTimes(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	eng.Add(&counter{name: "a", clk: clk})
	var times []clock.Time
	eng.At(0, func() { times = append(times, eng.Now()) }) // at time zero: clamped to 1
	eng.At(1500, func() {
		times = append(times, eng.Now())
		// From inside a callback, a past time lands strictly after now.
		eng.At(100, func() { times = append(times, eng.Now()) })
	})
	eng.Run(3000)
	if len(times) != 3 {
		t.Fatalf("fired %d callbacks, want 3: %v", len(times), times)
	}
	if times[0] != 1 || times[1] != 1500 || times[2] != 1501 {
		t.Errorf("fire times %v, want [1 1500 1501]", times)
	}
}

// TestAtRunsBeforeEdges: a callback at an instant that coincides with a
// clock edge runs before the components dispatch there — injected
// perturbations take effect in the same cycle.
func TestAtRunsBeforeEdges(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	a := &counter{name: "a", clk: clk}
	eng.Add(a)
	updatesSeen := -1
	eng.At(2000, func() { updatesSeen = a.updates })
	eng.Run(3000)
	if updatesSeen != 1 {
		t.Errorf("callback at 2000 saw %d updates, want 1 (the edge at 1000 only)", updatesSeen)
	}
}

// TestInvalidateScheduleAfterPeriodChange: mutating a clock's period from a
// scheduled callback (plus InvalidateSchedule) moves every subsequent edge
// to the new cadence without skipping the edge due at the mutation instant.
func TestInvalidateScheduleAfterPeriodChange(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	a := &counter{name: "a", clk: clk}
	eng.Add(a)
	eng.At(3500, func() {
		clk.Period = 500
		eng.InvalidateSchedule()
	})
	eng.Run(6000)
	// Old cadence: 1000, 2000, 3000. The new cadence (period 500, phase 0)
	// has an edge exactly at the mutation instant 3500, which still fires,
	// then 4000, 4500, 5000, 5500, 6000.
	if a.updates != 9 {
		t.Errorf("updates = %d, want 9 after mid-run period change", a.updates)
	}
	if a.lastTime != 6000 {
		t.Errorf("last edge at %d, want 6000", a.lastTime)
	}
}

// TestInvalidateScheduleAfterPhaseStep: a phase step that would place the
// clock's next edge in the past rounds up to the current instant instead of
// stalling or rewinding the group.
func TestInvalidateScheduleAfterPhaseStep(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	a := &counter{name: "a", clk: clk}
	eng.Add(a)
	eng.At(2500, func() {
		clk.Phase = 300
		eng.InvalidateSchedule()
	})
	eng.Run(5000)
	// Old cadence: 1000, 2000. New cadence from 2500: 3300, 4300.
	if a.updates != 4 {
		t.Errorf("updates = %d, want 4 after phase step", a.updates)
	}
	if a.lastTime != 4300 {
		t.Errorf("last edge at %d, want 4300", a.lastTime)
	}
}

// TestCoincidentClockAndTimer: when a timer and a clock edge share an
// instant, both execute and the instant is counted once.
func TestCoincidentClockAndTimer(t *testing.T) {
	eng := New()
	clk := clock.New("c", 1000, 0)
	a := &counter{name: "a", clk: clk}
	eng.Add(a)
	fired := false
	eng.At(2000, func() { fired = true })
	instants := eng.Run(2000)
	if !fired || a.updates != 2 {
		t.Errorf("fired=%v updates=%d, want callback and both edges", fired, a.updates)
	}
	if instants != 2 {
		t.Errorf("instants = %d, want 2 — coincident timer and edge share an instant", instants)
	}
}
