// Package sim is a deterministic, multi-clock-domain, cycle-accurate
// simulation engine for on-chip networks.
//
// The engine advances absolute time (integer picoseconds, see package
// clock) from rising edge to rising edge. All components whose clocks have
// an edge at the current instant execute in two phases:
//
//  1. Sample: every due component reads its input wires. Wires still hold
//     the values committed before this instant, so a reader clocked at the
//     same instant as a writer observes the writer's *previous* output —
//     exactly the register-transfer semantics of synchronous hardware.
//  2. Update: every due component computes its next state and drives its
//     output wires. Drives are buffered.
//  3. Commit: all buffered drives become visible.
//
// Components in different clock domains simply fire at different instants;
// cross-domain channels (bi-synchronous FIFOs, token channels) are modelled
// in package sim as well, with explicit forwarding delays, because they are
// the only legal clock-domain crossings in aelite.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/clock"
)

// A Component is a clocked network element (router, NI, link pipeline
// stage, wrapper, traffic generator...).
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Clock returns the clock domain driving this component.
	Clock() *clock.Clock
	// Sample is called first at each rising edge of the component's
	// clock; the component must read all its inputs here.
	Sample(now clock.Time)
	// Update is called after every due component has sampled; the
	// component computes its next state and drives its outputs.
	Update(now clock.Time)
}

// An Engine owns components and wires and advances simulated time.
type Engine struct {
	components []Component
	wires      []committable
	now        clock.Time
	edges      int64 // total component-edges executed

	// trace, when non-nil, receives a line per interesting event from
	// components that support tracing.
	trace func(string)
}

// New returns an empty engine at time zero.
func New() *Engine { return &Engine{} }

// Add registers a component with the engine. Components execute in the
// order they were added when their edges coincide; the two-phase schedule
// makes the result independent of that order, but keeping it fixed makes
// traces stable.
func (e *Engine) Add(c Component) {
	if c.Clock() == nil {
		panic(fmt.Sprintf("sim: component %q has no clock", c.Name()))
	}
	e.components = append(e.components, c)
}

// AddWire registers anything with a commit phase (wires, FIFO channels).
func (e *Engine) AddWire(w committable) {
	e.wires = append(e.wires, w)
}

// Now returns the current simulation time.
func (e *Engine) Now() clock.Time { return e.now }

// Edges returns the total number of component edges executed so far. It is
// a useful work metric for benchmarks.
func (e *Engine) Edges() int64 { return e.edges }

// SetTrace installs a trace sink; nil disables tracing.
func (e *Engine) SetTrace(f func(string)) { e.trace = f }

// Tracef emits a trace line if tracing is enabled.
func (e *Engine) Tracef(format string, args ...any) {
	if e.trace != nil {
		e.trace(fmt.Sprintf(format, args...))
	}
}

type committable interface{ commit() }

// Run advances the simulation until (and including) all edges at times
// <= until. It returns the number of distinct instants executed.
func (e *Engine) Run(until clock.Time) int {
	instants := 0
	due := make([]Component, 0, len(e.components))
	for {
		// Find the earliest next edge strictly after e.now among all
		// component clocks.
		next := clock.Infinity
		for _, c := range e.components {
			if t := c.Clock().NextEdge(e.now); t < next {
				next = t
			}
		}
		if next == clock.Infinity || next > until {
			e.now = until
			return instants
		}
		e.now = next
		due = due[:0]
		for _, c := range e.components {
			if _, ok := c.Clock().EdgeIndex(next); ok {
				due = append(due, c)
			}
		}
		for _, c := range due {
			c.Sample(next)
		}
		for _, c := range due {
			c.Update(next)
		}
		for _, w := range e.wires {
			w.commit()
		}
		e.edges += int64(len(due))
		instants++
	}
}

// RunCycles advances a purely synchronous simulation by n edges of the
// given clock. It is a convenience wrapper over Run.
func (e *Engine) RunCycles(c *clock.Clock, n int64) {
	if n <= 0 {
		return
	}
	start := c.NextEdge(e.now)
	e.Run(start + clock.Time(n-1)*c.Period)
}

// Components returns the registered components sorted by name; useful for
// diagnostics.
func (e *Engine) Components() []Component {
	out := append([]Component(nil), e.components...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
