package sim

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/clock"
	"repro/internal/trace"
)

// A Component is a clocked network element (router, NI, link pipeline
// stage, wrapper, traffic generator...).
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Clock returns the clock domain driving this component.
	Clock() *clock.Clock
	// Sample is called first at each rising edge of the component's
	// clock; the component must read all its inputs here.
	Sample(now clock.Time)
	// Update is called after every due component has sampled; the
	// component computes its next state and drives its outputs.
	Update(now clock.Time)
}

// An Engine owns components and wires and advances simulated time.
//
// An Engine is strictly single-goroutine: all methods must be called from
// one goroutine at a time. Concurrency lives one level up — package
// parallel fans independent configurations across workers, each owning a
// private Engine.
type Engine struct {
	components []Component
	wires      []committable // committed at every executed instant
	clocked    []clockedWire // committed only at their clock's edges
	now        clock.Time
	edges      int64 // total component-edges executed

	// Edge schedule: components grouped by clock, with a min-heap of
	// groups keyed by each clock's next edge. Rebuilt lazily whenever the
	// component set or a clock definition changes (dirty).
	groups  []*clockGroup
	gheap   []*clockGroup
	orphans []committable // clocked wires whose clock drives no component
	dirty   bool

	// Scratch buffers for Run's per-instant edge dispatch, hoisted here so
	// steady-state simulation performs zero allocations per instant.
	due       []indexedComp
	dueGroups []*clockGroup

	// Scheduled callbacks, fired at exact picosecond instants (fault
	// injection, reconfiguration). Min-heap on (at, seq).
	timers   []timerEntry
	timerSeq int64

	// tracer, when non-nil, is the typed event bus components emit their
	// flit-lifecycle events on. The engine itself emits nothing — the
	// exact-time edges it dispatches are the timestamps components stamp
	// onto their events — but owning the bus here gives drivers one place
	// to find it.
	tracer *trace.Bus

	// fast, when non-nil, is a compiled fast path (package replay) that
	// may consume whole stretches of the schedule without per-instant
	// dispatch. resim guards re-entrant cycle-accurate execution while the
	// fast path materialises state (Resimulate).
	fast  FastPath
	resim bool

	// timersRun counts executed scheduled callbacks; a fast path compares
	// it across a candidate period to prove the stretch was undisturbed.
	timersRun int64
}

// A FastPath can take over the engine's main loop for stretches of
// simulated time whose schedule it has proven periodic (package replay).
// The engine consults it at the top of every Run iteration and reports
// every cycle-accurately executed instant to Observe.
type FastPath interface {
	// Step offers the fast path the window (Engine.Now(), until]. It
	// returns Done=true when the whole window was consumed (the engine
	// then returns from Run), and Done=false to hand control back to the
	// cycle-accurate loop — either because the fast path is not engaged,
	// or because it deoptimised (materialised real state) at a hazard such
	// as a pending timer. Now/Edges/Instants report the progress made.
	Step(until clock.Time) FastResult
	// Observe reports one cycle-accurately executed instant: its time and
	// how many component edges fired.
	Observe(now clock.Time, edges int)
	// Invalidated reports a structural mutation (component or wire added
	// or removed, clock schedule invalidated). It is called before the
	// mutation takes effect, so an engaged fast path can materialise the
	// pre-mutation state.
	Invalidated()
	// Sync materialises any fast-forwarded state so that every component,
	// wire and statistic reads as if the run had been cycle-accurate all
	// along. Callers must invoke Engine.Sync before inspecting state.
	Sync()
}

// A FastResult reports the progress a FastPath.Step call made.
type FastResult struct {
	Now      clock.Time // simulation time reached (<= until)
	Edges    int64      // component edges accounted for
	Instants int        // distinct instants consumed
	Done     bool       // whole window consumed; Run returns
}

// A clockGroup holds every component driven by one clock, in add order,
// plus the wires written from that domain: commits are batched per clock
// group, so an instant only touches the wires a due domain can have driven.
type clockGroup struct {
	clk   *clock.Clock
	comps []indexedComp
	wires []committable
	next  clock.Time // cached next edge, strictly after the last dispatch
}

// A clockedWire associates a committable with the clock domain of its
// writer, for commit batching.
type clockedWire struct {
	w   committable
	clk *clock.Clock
}

// indexedComp remembers a component's global add index so coincident
// edges of different clocks still execute in add order (stable traces).
type indexedComp struct {
	c   Component
	idx int
}

type timerEntry struct {
	at  clock.Time
	seq int64
	f   func()
}

// New returns an empty engine at time zero.
func New() *Engine { return &Engine{} }

// Add registers a component with the engine. Components execute in the
// order they were added when their edges coincide; the two-phase schedule
// makes the result independent of that order, but keeping it fixed makes
// traces stable.
func (e *Engine) Add(c Component) {
	if c.Clock() == nil {
		panic(fmt.Sprintf("sim: component %q has no clock", c.Name()))
	}
	e.invalidateFast()
	e.components = append(e.components, c)
	e.dirty = true
}

// Remove unregisters a component (reconfiguration close). It reports
// whether the component was found. Clocked wires whose domain loses its
// last component fall back to committing at every instant from the next
// rebuild on, so pending drives are never lost (see AddWireClocked).
func (e *Engine) Remove(c Component) bool {
	for i, have := range e.components {
		if have == c {
			e.invalidateFast()
			e.components = append(e.components[:i], e.components[i+1:]...)
			e.dirty = true
			return true
		}
	}
	return false
}

// At schedules f to run at the exact instant t, before any component edges
// at that instant (and regardless of whether any clock has an edge there).
// Callbacks at the same instant run in registration order. A time at or
// before the current instant fires at the next executed instant; the
// returned time is the instant the callback will actually fire at, so a
// caller scheduling "at the current instant" can detect the one-instant
// drift instead of silently producing a shifted reconfiguration. Scheduled
// callbacks may mutate clocks; call InvalidateSchedule afterwards so the
// engine recomputes its edge schedule.
func (e *Engine) At(t clock.Time, f func()) clock.Time {
	if t <= e.now {
		t = e.now + 1
	}
	e.timers = append(e.timers, timerEntry{at: t, seq: e.timerSeq, f: f})
	e.timerSeq++
	timerUp(e.timers, len(e.timers)-1)
	return t
}

// InvalidateSchedule tells the engine that a clock's period or phase was
// mutated (fault injection models drift and jitter this way) so cached
// next-edge times must be recomputed before the next dispatch.
func (e *Engine) InvalidateSchedule() {
	e.invalidateFast()
	e.dirty = true
}

// invalidateFast tells the fast path the schedule or element set is about
// to change, before the change lands.
func (e *Engine) invalidateFast() {
	if e.fast != nil {
		e.fast.Invalidated()
	}
}

// AddWire registers anything with a commit phase (wires, FIFO channels).
// The wire is committed at every executed instant. Prefer AddWireClocked
// when the wire's writer lives in a known clock domain: per-instant cost
// then scales with the due domains, not with the total wire count.
func (e *Engine) AddWire(w committable) {
	e.invalidateFast()
	e.wires = append(e.wires, w)
}

// AddWireClocked registers a wire whose writer is clocked by clk: the wire
// is committed only at clk's edges, batching commit work per clock group.
// This is always legal for register-transfer wires, because a wire can
// only acquire a pending drive during an Update of its writer — i.e. at a
// clk edge — and commit is a no-op at every other instant. Two behaviours
// shift relative to AddWire, both toward the hardware semantics: a
// commit-time intercept (fault injection) observes the wire once per
// writer-clock cycle instead of once per engine instant, and a drive
// issued from an At callback becomes visible at the wire's next clk edge
// rather than at the next instant of any clock.
//
// If clk never acquires components, the wire falls back to committing at
// every instant so drives are never lost.
func (e *Engine) AddWireClocked(w committable, clk *clock.Clock) {
	if clk == nil {
		e.AddWire(w)
		return
	}
	e.invalidateFast()
	e.clocked = append(e.clocked, clockedWire{w: w, clk: clk})
	e.dirty = true
}

// SetFastPath installs (or, with nil, removes) a compiled fast path. The
// engine consults it at the top of every Run iteration; see FastPath.
func (e *Engine) SetFastPath(f FastPath) { e.fast = f }

// Sync materialises any state the installed fast path has fast-forwarded,
// so components, wires and statistics read as if the run had been
// cycle-accurate throughout. It is a no-op without a fast path.
func (e *Engine) Sync() {
	if e.fast != nil {
		e.fast.Sync()
	}
}

// ResumeAt rewinds (or advances) the engine's clock to t and marks the
// schedule dirty. It is the resume half of the fast path's deopt seam: a
// materialising fast path shifts component state to a known boundary
// instant, calls ResumeAt(boundary), and then Resimulate to replay the
// residual instants cycle-accurately. General code should never call it.
func (e *Engine) ResumeAt(t clock.Time) {
	e.now = t
	e.dirty = true
}

// Resimulate runs the cycle-accurate loop up to and including until,
// bypassing the fast path. The caller (a materialising fast path) must
// guarantee no timer is pending at or before until. The edge counter is
// preserved: resimulated instants re-execute work the fast path already
// accounted for when it replayed them.
func (e *Engine) Resimulate(until clock.Time) int {
	e.resim = true
	edges := e.edges
	defer func() {
		e.resim = false
		e.edges = edges
	}()
	return e.Run(until)
}

// NextTimer returns the earliest pending scheduled-callback instant.
func (e *Engine) NextTimer() (clock.Time, bool) {
	if len(e.timers) == 0 {
		return 0, false
	}
	return e.timers[0].at, true
}

// TimersRun returns the number of scheduled callbacks executed so far.
func (e *Engine) TimersRun() int64 { return e.timersRun }

// AddOrder returns the registered components in add order — the order
// coincident edges dispatch in. The caller must not mutate the slice.
func (e *Engine) AddOrder() []Component { return e.components }

// Now returns the current simulation time.
func (e *Engine) Now() clock.Time { return e.now }

// Edges returns the total number of component edges executed so far. It is
// a useful work metric for benchmarks.
func (e *Engine) Edges() int64 { return e.edges }

// SetTracer installs the typed trace event bus; nil disables tracing.
// It replaces the historical stringly SetTrace(func(string)) hook: events
// are now typed trace.Event values with exact picosecond timestamps.
func (e *Engine) SetTracer(b *trace.Bus) { e.tracer = b }

// Tracer returns the installed event bus, or nil when tracing is off.
func (e *Engine) Tracer() *trace.Bus { return e.tracer }

type committable interface{ commit() }

// rebuild regroups components by clock, attaches each clocked wire to its
// writer's group, and recomputes every group's next edge strictly after
// the instant from.
func (e *Engine) rebuild(from clock.Time) {
	byClk := make(map[*clock.Clock]*clockGroup, len(e.groups)+1)
	e.groups = e.groups[:0]
	for i, c := range e.components {
		g := byClk[c.Clock()]
		if g == nil {
			g = &clockGroup{clk: c.Clock()}
			byClk[c.Clock()] = g
			e.groups = append(e.groups, g)
		}
		g.comps = append(g.comps, indexedComp{c: c, idx: i})
	}
	e.orphans = e.orphans[:0]
	for _, cw := range e.clocked {
		if g := byClk[cw.clk]; g != nil {
			g.wires = append(g.wires, cw.w)
		} else {
			// No component ticks this clock, so its edges never execute;
			// commit every instant instead of never.
			e.orphans = append(e.orphans, cw.w)
		}
	}
	e.gheap = e.gheap[:0]
	for _, g := range e.groups {
		g.next = g.clk.NextEdge(from)
		e.gheap = append(e.gheap, g)
	}
	for i := len(e.gheap)/2 - 1; i >= 0; i-- {
		groupDown(e.gheap, i)
	}
	e.dirty = false
}

// Run advances the simulation until (and including) all edges at times
// <= until. It returns the number of distinct instants executed.
//
// Instead of rescanning every component per instant, the engine keeps the
// components grouped by clock and pops the next-due clocks off a min-heap:
// the per-instant cost scales with the number of due clock domains, not
// with the total component count. Wire commits are batched the same way
// (see AddWireClocked), the common single-domain instant dispatches a
// group's components in place without copying, and the dispatch scratch
// lives on the Engine, so steady-state instants allocate nothing.
func (e *Engine) Run(until clock.Time) int {
	instants := 0
	for {
		if e.dirty {
			e.rebuild(e.now)
		}
		if e.fast != nil && !e.resim {
			res := e.fast.Step(until)
			instants += res.Instants
			e.edges += res.Edges
			if res.Now > e.now {
				e.now = res.Now
			}
			if res.Done {
				return instants
			}
			if e.dirty {
				e.rebuild(e.now)
			}
		}
		next := clock.Infinity
		if len(e.gheap) > 0 {
			next = e.gheap[0].next
		}
		if len(e.timers) > 0 && e.timers[0].at < next {
			next = e.timers[0].at
		}
		if next == clock.Infinity || next > until {
			e.now = until
			return instants
		}
		e.now = next

		// Scheduled callbacks run first at their instant. They may
		// mutate clocks; rebuild then re-derives the schedule so that
		// unchanged clocks due exactly at this instant still fire, and
		// edges a mutation would place in the past round up to now.
		ranTimer := false
		for len(e.timers) > 0 && e.timers[0].at <= next {
			t := e.timers[0]
			n := len(e.timers) - 1
			e.timers[0] = e.timers[n]
			e.timers = e.timers[:n]
			timerDown(e.timers, 0)
			t.f()
			e.timersRun++
			ranTimer = true
		}
		if ranTimer && e.dirty {
			e.rebuild(next - 1)
		}

		dueGroups := e.dueGroups[:0]
		for len(e.gheap) > 0 && e.gheap[0].next <= next {
			g := e.gheap[0]
			n := len(e.gheap) - 1
			e.gheap[0] = e.gheap[n]
			e.gheap = e.gheap[:n]
			groupDown(e.gheap, 0)
			dueGroups = append(dueGroups, g)
		}
		for _, g := range dueGroups {
			g.next = g.clk.NextEdge(next)
			e.gheap = append(e.gheap, g)
			groupUp(e.gheap, len(e.gheap)-1)
		}
		e.dueGroups = dueGroups

		// Edge dispatch. The overwhelmingly common instant has exactly one
		// due clock domain (every mesochronous tile edge, every instant of
		// a purely synchronous run): dispatch that group's components in
		// place, with no copy and no sort. Coincident edges of different
		// domains fall back to merging into the scratch slice and sorting
		// by add index, so cross-domain traces stay in add order.
		due := e.due[:0]
		switch len(dueGroups) {
		case 0:
		case 1:
			due = dueGroups[0].comps
		default:
			for _, g := range dueGroups {
				due = append(due, g.comps...)
			}
			e.due = due
			slices.SortFunc(due, func(a, b indexedComp) int { return a.idx - b.idx })
		}
		for _, c := range due {
			c.c.Sample(next)
		}
		for _, c := range due {
			c.c.Update(next)
		}

		// Commit phase: the due domains' own wires, then the wires that
		// commit at every instant. Wires of undisturbed domains cannot
		// hold a pending drive, so skipping them is observation-free.
		for _, g := range dueGroups {
			for _, w := range g.wires {
				w.commit()
			}
		}
		for _, w := range e.wires {
			w.commit()
		}
		for _, w := range e.orphans {
			w.commit()
		}
		e.edges += int64(len(due))
		instants++
		if e.fast != nil && !e.resim {
			e.fast.Observe(next, len(due))
		}
	}
}

// groupUp/groupDown maintain the clock-group min-heap on next edge time.
func groupUp(h []*clockGroup, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].next <= h[i].next {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func groupDown(h []*clockGroup, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l].next < h[m].next {
			m = l
		}
		if r < len(h) && h[r].next < h[m].next {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// timerUp/timerDown maintain the callback min-heap on (at, seq).
func timerLess(a, b timerEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func timerUp(h []timerEntry, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !timerLess(h[i], h[p]) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func timerDown(h []timerEntry, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && timerLess(h[l], h[m]) {
			m = l
		}
		if r < len(h) && timerLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// RunCycles advances a purely synchronous simulation by n edges of the
// given clock. It is a convenience wrapper over Run.
func (e *Engine) RunCycles(c *clock.Clock, n int64) {
	if n <= 0 {
		return
	}
	start := c.NextEdge(e.now)
	e.Run(start + clock.Time(n-1)*c.Period)
}

// Components returns the registered components sorted by name; useful for
// diagnostics.
func (e *Engine) Components() []Component {
	out := append([]Component(nil), e.components...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
