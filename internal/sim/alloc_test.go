package sim

import (
	"testing"

	"repro/internal/clock"
)

// buildAllocRig assembles a pure-engine workload: three clock domains with
// deliberately coprime periods (so instants alternate between single-domain
// dispatch and coincident multi-domain merges), register chains on clocked
// wires, and one globally committed wire.
func buildAllocRig() *Engine {
	eng := New()
	cka := clock.New("a", 1000, 0)
	ckb := clock.New("b", 1500, 250)
	ckc := clock.New("c", 3000, 0)
	global := NewWire[int]("global")
	eng.AddWire(global)
	prev := global
	for i, ck := range []*clock.Clock{cka, ckb, ckc, cka, ckb, cka} {
		w := NewWire[int]("w")
		eng.AddWireClocked(w, ck)
		eng.Add(&counter{name: "c", clk: ck, in: prev, out: w})
		prev = w
		_ = i
	}
	eng.Run(20 * 3000) // warm past heap growth and the lazy rebuild
	return eng
}

// TestRunSteadyStateAllocs pins the hot-path contract the sweep runner
// depends on: once the schedule is built and the scratch buffers have
// grown, advancing simulated time allocates nothing — no per-call due
// slices, no sort closures, no per-instant commit bookkeeping.
func TestRunSteadyStateAllocs(t *testing.T) {
	eng := buildAllocRig()
	allocs := testing.AllocsPerRun(200, func() {
		eng.Run(eng.Now() + 3000)
	})
	if allocs != 0 {
		t.Fatalf("Engine.Run allocates %.1f objects per steady-state call, want 0", allocs)
	}
}

// BenchmarkEngineRunAllocs is the alloc guard in benchmark form: run with
// -benchmem to see B/op and allocs/op for steady-state dispatch across
// three interleaved clock domains.
func BenchmarkEngineRunAllocs(b *testing.B) {
	eng := buildAllocRig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + 3000)
	}
	if n := testing.AllocsPerRun(100, func() { eng.Run(eng.Now() + 3000) }); n != 0 {
		b.Fatalf("steady-state Run allocates %.1f objects per call, want 0", n)
	}
}

// TestClockedWireMatchesGlobalWire: the same two-stage register chain must
// behave identically whether its wires commit every instant (AddWire) or
// batched with their writer's clock group (AddWireClocked), even with an
// unrelated faster clock domain forcing engine instants between the
// chain's edges.
func TestClockedWireMatchesGlobalWire(t *testing.T) {
	build := func(clocked bool) (*Engine, *Wire[int]) {
		eng := New()
		slow := clock.New("slow", 3000, 0)
		fast := clock.New("fast", 700, 0)
		w1 := NewWire[int]("w1")
		w2 := NewWire[int]("w2")
		if clocked {
			eng.AddWireClocked(w1, slow)
			eng.AddWireClocked(w2, slow)
		} else {
			eng.AddWire(w1)
			eng.AddWire(w2)
		}
		eng.Add(&counter{name: "a", clk: slow, out: w1})
		eng.Add(&counter{name: "b", clk: slow, in: w1, out: w2})
		eng.Add(&counter{name: "noise", clk: fast})
		return eng, w2
	}
	ge, gw := build(false)
	ce, cw := build(true)
	for step := 1; step <= 10; step++ {
		until := clock.Time(step * 2500)
		ge.Run(until)
		ce.Run(until)
		if gw.Read() != cw.Read() {
			t.Fatalf("step %d: global-committed chain reads %d, clock-batched chain %d",
				step, gw.Read(), cw.Read())
		}
	}
}

// TestClockedWireOrphanFallsBack: a wire registered against a clock that
// drives no component must still commit (at every instant), not silently
// swallow drives.
func TestClockedWireOrphanFallsBack(t *testing.T) {
	eng := New()
	ck := clock.New("c", 1000, 0)
	orphanClk := clock.New("orphan", 500, 0)
	w := NewWire[int]("w")
	eng.AddWireClocked(w, orphanClk)
	eng.Add(&counter{name: "a", clk: ck, out: w})
	eng.Run(1000)
	if got := w.Read(); got != 1 {
		t.Fatalf("orphan-clocked wire reads %d after one writer edge, want 1", got)
	}
}

// TestClockedInterceptRunsPerWriterCycle: on a clock-batched wire the
// commit intercept fires once per writer-clock edge — the per-cycle
// semantics fault injection documents — not once per engine instant.
func TestClockedInterceptRunsPerWriterCycle(t *testing.T) {
	eng := New()
	slow := clock.New("slow", 3000, 0)
	fast := clock.New("fast", 500, 0)
	w := NewWire[int]("w")
	eng.AddWireClocked(w, slow)
	eng.Add(&counter{name: "a", clk: slow, out: w})
	eng.Add(&counter{name: "noise", clk: fast})
	calls := 0
	w.SetIntercept(func(v int, driven bool) int {
		calls++
		if !driven {
			t.Fatalf("intercept saw an undriven commit; writer drives on every edge")
		}
		return v
	})
	eng.Run(9000) // 3 slow edges, 18 fast edges
	if calls != 3 {
		t.Fatalf("intercept ran %d times, want once per writer edge (3)", calls)
	}
}
