package area

import (
	"fmt"
	"math"
)

// Technology constants (90 nm low power, worst-case, cell area in µm²),
// calibrated as described in the package comment.
const (
	// RegisterBitArea is the area of one pipeline flip-flop. The aelite
	// router has three register stages (input, HPU output, switch
	// output) per port-bit.
	RegisterBitArea = 12.0
	// PipelineStages is the aelite router depth in register stages.
	PipelineStages = 3
	// DatapathBitArea covers per-port-bit buffering and wiring cells.
	DatapathBitArea = 33.3
	// MuxBitArea is the switch mux-tree cost per input-output pair per
	// bit (the p² term; small, which is why Fig. 6(a) looks linear).
	MuxBitArea = 2.0
	// HPUArea is the header parsing unit per input port: path-field
	// shifter, one-hot port encode.
	HPUArea = 280.0
	// ControlArea is the arity-independent control overhead.
	ControlArea = 212.0

	// Critical-path model: delay(p, w) = DelayBase + DelayPerPort*p +
	// DelayPerBit*w picoseconds, fit to the frequency axes of Fig. 6.
	DelayBase    = 600.7
	DelayPerPort = 71.0
	DelayPerBit  = 1.196

	// Upsizing: area multiplies by 1 + UpsizeGain * logistic((f/fmax -
	// UpsizeKnee)/UpsizeWidth).
	UpsizeGain  = 0.262
	UpsizeKnee  = 0.76
	UpsizeWidth = 0.045

	// Bi-synchronous FIFO cell area per word-bit: custom cells from
	// [18] versus standard cells from [4]. A 4-word 32-bit FIFO then
	// costs ≈1500 µm² and ≈3300 µm² respectively.
	FIFOCustomBitArea   = 11.72
	FIFOStandardBitArea = 25.78
	LinkFSMArea         = 150.0
	LinkFIFOWords       = 4

	// Baselines. The combined GS+BE Æthereal router is modelled as a
	// constant factor over the aelite router (its routing tables, BE
	// buffers, arbitration and link-level flow control dominate), with
	// 1/1.5 of the frequency — both straight from Section VII.
	GSBEAreaFactor = 4.7
	GSBESpeedRatio = 1.5

	// Published competitor routers, scaled to 90 nm (paper Section
	// VII): the mesochronous router of Miro Panades et al. [4] and the
	// asynchronous router of Beigne et al. [7].
	MesochronousRouterRef4 = 82000.0  // µm²
	AsynchronousRouterRef7 = 120000.0 // µm²
	// AethercalGSBE130 is the Æthereal GS+BE router in its original
	// 130 nm technology: 0.13 mm² at 500 MHz [8].
	AethercalGSBE130Area = 130000.0
	AethercalGSBE130MHz  = 500.0
)

// RouterNominalArea returns the aelite router cell area, in µm², at a
// relaxed target frequency (no upsizing), for the given arity and data
// width in bits.
func RouterNominalArea(arity, widthBits int) float64 {
	check(arity, widthBits)
	p, w := float64(arity), float64(widthBits)
	regs := PipelineStages * RegisterBitArea * p * w
	datapath := DatapathBitArea * p * w
	mux := MuxBitArea * p * p * w
	hpu := HPUArea * p
	return regs + datapath + mux + hpu + ControlArea
}

// RouterFmaxMHz returns the maximum synthesisable frequency in MHz.
func RouterFmaxMHz(arity, widthBits int) float64 {
	check(arity, widthBits)
	delayPs := DelayBase + DelayPerPort*float64(arity) + DelayPerBit*float64(widthBits)
	return 1e6 / delayPs
}

// RouterArea returns the router cell area, in µm², when synthesised for
// the given target frequency. Targets above fmax saturate at the
// maximum-effort area (the synthesiser cannot meet them; Fig. 5's area
// curve flattens there).
func RouterArea(arity, widthBits int, targetMHz float64) float64 {
	if targetMHz <= 0 {
		panic(fmt.Sprintf("area: non-positive target frequency %v", targetMHz))
	}
	x := targetMHz / RouterFmaxMHz(arity, widthBits)
	if x > 1 {
		x = 1
	}
	return RouterNominalArea(arity, widthBits) * upsize(x)
}

// RouterMaxArea is the area when synthesised for maximum frequency, as in
// Fig. 6.
func RouterMaxArea(arity, widthBits int) float64 {
	return RouterNominalArea(arity, widthBits) * upsize(1)
}

func upsize(x float64) float64 {
	return 1 + UpsizeGain/(1+math.Exp(-(x-UpsizeKnee)/UpsizeWidth))
}

// FIFOArea returns a bi-synchronous FIFO's cell area in µm².
func FIFOArea(words, widthBits int, custom bool) float64 {
	if words <= 0 || widthBits <= 0 {
		panic(fmt.Sprintf("area: invalid FIFO %dx%d", words, widthBits))
	}
	per := FIFOStandardBitArea
	if custom {
		per = FIFOCustomBitArea
	}
	return float64(words*widthBits) * per
}

// LinkStageArea returns one mesochronous link pipeline stage: the 4-word
// bi-synchronous FIFO plus the alignment FSM.
func LinkStageArea(widthBits int, custom bool) float64 {
	return FIFOArea(LinkFIFOWords, widthBits, custom) + LinkFSMArea
}

// MesochronousRouterArea returns the complete mesochronous aelite router:
// the synchronous router at the given target frequency plus one link
// pipeline stage per port (Section V reports ≈0.032 mm² for arity 5 at
// 32 bit with standard-cell FIFOs).
func MesochronousRouterArea(arity, widthBits int, targetMHz float64, custom bool) float64 {
	return RouterArea(arity, widthBits, targetMHz) + float64(arity)*LinkStageArea(widthBits, custom)
}

// GSBERouterArea models the combined GS+BE Æthereal router in 90 nm for
// the same arity/width, at its own (lower) maximum frequency.
func GSBERouterArea(arity, widthBits int) float64 {
	return GSBEAreaFactor * RouterNominalArea(arity, widthBits)
}

// GSBERouterFmaxMHz returns the GS+BE router's maximum frequency.
func GSBERouterFmaxMHz(arity, widthBits int) float64 {
	return RouterFmaxMHz(arity, widthBits) / GSBESpeedRatio
}

// ScaleArea converts a cell area between technology nodes by the square
// of the feature-size ratio (the scaling the paper applies to the 130 nm
// numbers of [7] and [8]).
func ScaleArea(area float64, fromNm, toNm float64) float64 {
	r := toNm / fromNm
	return area * r * r
}

// RawThroughputGBps returns the aggregate raw throughput of a router in
// Gbyte/s: every port forwarding one word per cycle at the given
// frequency. (One-directional port count; a full-duplex reading doubles
// it. Section VII quotes 64 Gbyte/s for an arity-6, 64-bit router.)
func RawThroughputGBps(arity, widthBits int, fMHz float64) float64 {
	return float64(arity) * float64(widthBits) / 8 * fMHz * 1e6 / 1e9
}

func check(arity, widthBits int) {
	if arity < 2 || arity > 64 {
		panic(fmt.Sprintf("area: arity %d outside model range", arity))
	}
	if widthBits < 8 || widthBits > 1024 {
		panic(fmt.Sprintf("area: width %d outside model range", widthBits))
	}
}
