package area

import (
	"math"
	"testing"
)

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	if math.Abs(got-want) > frac*want {
		t.Errorf("%s = %.1f, want %.1f ± %.0f%%", name, got, want, frac*100)
	}
}

// TestFig5Anchors checks the paper's stated arity-5 32-bit numbers: less
// than 0.015 mm² up to 650 MHz, steep growth after ~750 MHz, saturation
// around 0.018 mm².
func TestFig5Anchors(t *testing.T) {
	a500 := RouterArea(5, 32, 500)
	a650 := RouterArea(5, 32, 650)
	if a650 >= 15000 {
		t.Errorf("area at 650 MHz = %.0f µm², paper says below 0.015 mm²", a650)
	}
	within(t, "area(5,32,500)", a500, 14300, 0.03)
	// Flat region: 500 -> 650 MHz changes area by under 3%.
	if (a650-a500)/a500 > 0.03 {
		t.Errorf("area grew %.1f%% between 500 and 650 MHz; Fig. 5 is flat there", (a650-a500)/a500*100)
	}
	// Steep region: 700 -> 800 MHz adds much more than the flat region.
	grow := RouterArea(5, 32, 800) - RouterArea(5, 32, 700)
	if grow < 1000 {
		t.Errorf("area grew only %.0f µm² between 700 and 800 MHz; Fig. 5 shows the steep region there", grow)
	}
	// Saturation near 0.018 mm².
	sat := RouterMaxArea(5, 32)
	within(t, "saturated area(5,32)", sat, 18000, 0.03)
	// Monotone non-decreasing in target frequency.
	prev := 0.0
	for f := 400.0; f <= 1100; f += 25 {
		a := RouterArea(5, 32, f)
		if a < prev {
			t.Errorf("area not monotone at %.0f MHz: %.1f < %.1f", f, a, prev)
		}
		prev = a
	}
}

// TestFig6aAnchors: 32-bit routers, arity 2..7 — area roughly linear in
// arity, fmax falling from ≈1.28 GHz to ≈900 MHz.
func TestFig6aAnchors(t *testing.T) {
	within(t, "fmax(2,32)", RouterFmaxMHz(2, 32), 1283, 0.03)
	within(t, "fmax(7,32)", RouterFmaxMHz(7, 32), 880, 0.05)
	within(t, "maxArea(2,32)", RouterMaxArea(2, 32), 6500, 0.15)
	within(t, "maxArea(7,32)", RouterMaxArea(7, 32), 26500, 0.10)
	// Roughly linear: second differences small compared to first.
	var areas []float64
	for p := 2; p <= 7; p++ {
		areas = append(areas, RouterMaxArea(p, 32))
	}
	for i := 2; i < len(areas); i++ {
		d1 := areas[i-1] - areas[i-2]
		d2 := areas[i] - areas[i-1]
		if math.Abs(d2-d1) > 0.25*d1 {
			t.Errorf("area vs arity not roughly linear at arity %d: steps %.0f then %.0f", i+2, d1, d2)
		}
	}
	// fmax strictly decreasing in arity.
	for p := 3; p <= 7; p++ {
		if RouterFmaxMHz(p, 32) >= RouterFmaxMHz(p-1, 32) {
			t.Errorf("fmax not decreasing at arity %d", p)
		}
	}
}

// TestFig6bAnchors: arity-6 routers, width 32..256 — area linear in
// width, fmax falling towards ≈750 MHz.
func TestFig6bAnchors(t *testing.T) {
	within(t, "fmax(6,256)", RouterFmaxMHz(6, 256), 750, 0.03)
	if f := RouterFmaxMHz(6, 32); f < 860 || f > 1000 {
		t.Errorf("fmax(6,32) = %.0f MHz, expected high-800s to ~1 GHz", f)
	}
	// Linear in width: area(256)/area(128) ≈ slightly under 2.
	r := RouterMaxArea(6, 256) / RouterMaxArea(6, 128)
	if r < 1.7 || r > 2.05 {
		t.Errorf("area(256)/area(128) = %.2f, expected near-proportional scaling", r)
	}
	// fmax strictly decreasing in width.
	for w := 64; w <= 256; w += 32 {
		if RouterFmaxMHz(6, w) >= RouterFmaxMHz(6, w-32) {
			t.Errorf("fmax not decreasing at width %d", w)
		}
	}
}

// TestSectionVAnchors: FIFO and complete-router numbers.
func TestSectionVAnchors(t *testing.T) {
	within(t, "custom 4x32 FIFO", FIFOArea(4, 32, true), 1500, 0.01)
	within(t, "standard 4x32 FIFO", FIFOArea(4, 32, false), 3300, 0.01)
	// Complete arity-5 router with mesochronous links ≈ 0.032 mm².
	complete := MesochronousRouterArea(5, 32, 600, false)
	within(t, "arity-5 mesochronous router", complete, 32000, 0.04)
	// The competitors it is compared against.
	if MesochronousRouterRef4 <= complete {
		t.Errorf("model says [4] (%.0f) is not larger than aelite (%.0f); the paper's comparison inverts", MesochronousRouterRef4, complete)
	}
	if AsynchronousRouterRef7 <= MesochronousRouterRef4 {
		t.Error("[7] should be larger than [4]")
	}
}

// TestSectionVIIAnchors: Æthereal GS+BE comparison — roughly 5x the area
// and 1/1.5 the frequency of aelite in the same technology.
func TestSectionVIIAnchors(t *testing.T) {
	ratio := GSBERouterArea(5, 32) / RouterNominalArea(5, 32)
	within(t, "GS+BE/aelite area ratio", ratio, 4.7, 0.01)
	if ratio < 4 || ratio > 6 {
		t.Errorf("area ratio %.1f outside the paper's 'roughly 5x'", ratio)
	}
	fr := RouterFmaxMHz(5, 32) / GSBERouterFmaxMHz(5, 32)
	within(t, "aelite/GS+BE frequency ratio", fr, 1.5, 0.01)
	// The 130 nm Æthereal number scaled to 90 nm is in the same ballpark
	// as the direct 90 nm model (the paper uses both views).
	scaled := ScaleArea(AethercalGSBE130Area, 130, 90)
	model := GSBERouterArea(5, 32)
	if scaled < 0.5*model || scaled > 1.5*model {
		t.Errorf("scaled 130 nm GS+BE area %.0f vs 90 nm model %.0f disagree badly", scaled, model)
	}
}

// TestThroughputClaim: an arity-6, 64-bit router offers tens of Gbyte/s
// at ≈0.03 mm² (Section VII quotes 64 Gbyte/s at 0.03 mm²; one-way raw
// throughput at fmax lands in the tens, doubling for full duplex).
func TestThroughputClaim(t *testing.T) {
	f := RouterFmaxMHz(6, 64)
	tp := RawThroughputGBps(6, 64, f)
	if tp < 35 || tp > 100 {
		t.Errorf("raw throughput %.1f GB/s out of the expected range", tp)
	}
	// The 0.03 mm² quote is the practical-frequency (nominal) area.
	a := RouterArea(6, 64, 600)
	within(t, "area(6,64,600MHz)", a, 30000, 0.15)
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { RouterNominalArea(1, 32) },
		func() { RouterNominalArea(5, 4) },
		func() { RouterArea(5, 32, 0) },
		func() { FIFOArea(0, 32, true) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
