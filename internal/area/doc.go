// Package area is the silicon cost model that stands in for the paper's
// commercial 90 nm low-power CMOS synthesis flow (worst-case corner, cell
// area before place-and-route).
//
// The model is structural — registers, switch mux tree, header parsing
// unit, control, FIFO cells — with constants calibrated so that every
// number the paper states is reproduced:
//
//   - Fig. 5: an arity-5, 32-bit router occupies <0.015 mm² up to
//     650 MHz, grows steeply after ~750 MHz and saturates around 875 MHz
//     near 0.018 mm².
//   - Fig. 6(a): 32-bit router area grows roughly linearly with arity
//     (≈5-27 kµm² over arity 2-7) while maximum frequency falls from
//     ≈1.3 GHz towards ≈900 MHz.
//   - Fig. 6(b): arity-6 router area grows linearly with word width
//     (tens of kµm² at 32 bit towards ≈150 kµm² at 256 bit) while
//     maximum frequency falls from ≈880 to ≈750 MHz.
//   - Section V: a 4-word bi-synchronous FIFO costs ≈1500 µm² with the
//     custom cells of [18] or ≈3300 µm² with the standard-cell FIFOs of
//     [4]; a complete arity-5 router with mesochronous link pipeline
//     stages is "in the order of 0.032 mm²"; the mesochronous router of
//     [4] occupies 0.082 mm² and the asynchronous router of [7] 0.12 mm²
//     (scaled from 130 nm).
//   - Section VII: the combined GS+BE Æthereal router occupies 0.13 mm²
//     at 500 MHz in 130 nm [8]; in the same 90 nm technology aelite is
//     roughly 5x smaller and 1.5x faster.
//
// Area-versus-target-frequency uses a logistic gate-upsizing term: flat
// while slack is plentiful, a knee around three quarters of the maximum
// frequency, saturation as the synthesiser runs out of upsizing headroom.
//
// The aelite-exp fig5/fig6a/fig6b/links tables render this model, and
// internal/power scales its idle-power term by these cell areas.
package area
