package wrapper

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/slots"
)

var layout = phit.DefaultLayout

// buildRing wires NI A -> router -> NI B -> router -> NI A through a
// wrapped arity-2 router, everything plesiochronous. Port 0 of the router
// faces A, port 1 faces B.
type ring struct {
	eng        *sim.Engine
	a, b       *ni.NI
	wa, wb, wr *Wrapper
	base       *clock.Clock
}

func buildRing(t *testing.T, ppmA, ppmB, ppmR float64) *ring {
	t.Helper()
	eng := sim.New()
	base := clock.NewMHz("base", 500, 0)
	ca := clock.Plesiochronous(base, "ca", ppmA, 100)
	cb := clock.Plesiochronous(base, "cb", ppmB, 700)
	cr := clock.Plesiochronous(base, "cr", ppmR, 1300)

	chAtoR := NewChannel("a>r", 2*base.Period)
	chRtoB := NewChannel("r>b", 2*base.Period)
	chBtoR := NewChannel("b>r", 2*base.Period)
	chRtoA := NewChannel("r>a", 2*base.Period)
	for _, ch := range []*Channel{chAtoR, chRtoB, chBtoR, chRtoA} {
		eng.AddWire(ch)
	}

	// Table: A injects conn 1 in slots 0,2 (of 4); B injects rev conn 2
	// in slot 1.
	ta := slots.NewTable(4)
	ta.Slots[0] = 1
	ta.Slots[2] = 1
	tb := slots.NewTable(4)
	tb.Slots[1] = 2

	// Paths: one router hop; at the router, A's traffic leaves on port
	// 1, B's on port 0.
	hdr1, _ := layout.Encode([]int{1}, 0, 0)
	hdr2, _ := layout.Encode([]int{0}, 0, 0)

	a := ni.New("A", ca, layout, ta, nil, nil)
	b := ni.New("B", cb, layout, tb, nil, nil)
	a.AddOutConn(ni.OutConnConfig{ID: 1, Header: hdr1, InitialCredits: 64, PairedIn: 2})
	b.AddInConn(ni.InConnConfig{ID: 1, QID: 0, RecvCapacity: 64, CreditFor: 2, AutoDrain: true})
	b.AddOutConn(ni.OutConnConfig{ID: 2, Header: hdr2, InitialCredits: 0, PairedIn: 1})
	a.AddInConn(ni.InConnConfig{ID: 2, QID: 0, RecvCapacity: 0, CreditFor: 1, AutoDrain: true})

	wa := New("wrap.A", ca, NewNIActor(a))
	wa.ConnectIn(0, chRtoA)
	wa.ConnectOut(0, chAtoR)
	wb := New("wrap.B", cb, NewNIActor(b))
	wb.ConnectIn(0, chRtoB)
	wb.ConnectOut(0, chBtoR)
	core := router.NewCore("R", 2, layout)
	wr := New("wrap.R", cr, NewRouterActor(core))
	wr.ConnectIn(0, chAtoR)
	wr.ConnectIn(1, chBtoR)
	wr.ConnectOut(0, chRtoA)
	wr.ConnectOut(1, chRtoB)

	eng.Add(wa)
	eng.Add(wb)
	eng.Add(wr)
	return &ring{eng: eng, a: a, b: b, wa: wa, wb: wb, wr: wr, base: base}
}

func TestWrapperDeliversPlesiochronous(t *testing.T) {
	r := buildRing(t, +300, -250, +120)
	for i := 0; i < 10; i++ {
		r.a.Offer(0, 1, phit.Meta{Seq: int64(i), Injected: 0})
	}
	r.eng.Run(3000 * r.base.Period)
	if got := r.b.InStats(1).Delivered; got != 10 {
		t.Fatalf("delivered %d of 10 across plesiochronous wrappers", got)
	}
	// Credits must have returned.
	if got := r.a.Credits(1); got < 55 {
		t.Errorf("credits %d of 64 after drain", got)
	}
}

// TestWrapperNoDeadlockWhenIdle: with no traffic at all, empty tokens
// keep every wrapper iterating — the Section VI reset/empty-token rule.
func TestWrapperNoDeadlockWhenIdle(t *testing.T) {
	r := buildRing(t, +400, -400, 0)
	r.eng.Run(600 * r.base.Period)
	// Every wrapper should have completed ~200 fires (600 cycles / 3),
	// minus start-up stalls.
	for _, w := range []*Wrapper{r.wa, r.wb, r.wr} {
		if w.Fires() < 150 {
			t.Errorf("%s fired only %d times in 200 flit cycles — stalled network", w.Name(), w.Fires())
		}
	}
}

// TestWrapperRateLimitedBySlowest: the network's iteration rate equals
// the slowest element's flit rate (paper Section VI-A).
func TestWrapperRateLimitedBySlowest(t *testing.T) {
	const slow = 50000 // 5% slow, dominates everything
	r := buildRing(t, 0, 0, slow)
	r.eng.Run(3000 * r.base.Period)
	fires := r.wa.Fires()
	// Slowest clock: period 2000*(1+0.05) = 2100 ps; 3000 base cycles =
	// 6 us -> 6e6/ (3*2100) = 952 iterations ideally.
	ideal := int64(3000*2000) / (3 * 2100)
	if fires > ideal+2 {
		t.Errorf("fast wrapper fired %d times, above the slowest-element rate %d", fires, ideal)
	}
	if fires < ideal-ideal/10 {
		t.Errorf("fires %d more than 10%% below the slowest-element rate %d — excessive stalling", fires, ideal)
	}
}

func TestWrapperStallsWithoutNeighbour(t *testing.T) {
	// A wrapper with a connected input that never produces tokens must
	// stall (after consuming the initial priming) rather than run free.
	eng := sim.New()
	base := clock.NewMHz("base", 500, 0)
	core := router.NewCore("R", 2, layout)
	w := New("w", base, NewRouterActor(core))
	dead := NewChannel("dead", 2*base.Period)
	out := NewChannel("out", 2*base.Period)
	eng.AddWire(dead)
	eng.AddWire(out)
	w.ConnectIn(0, dead)
	w.ConnectOut(0, out)
	eng.Add(w)
	eng.Run(300 * base.Period)
	// Initial tokens allow InitialTokens fires... but the output
	// channel also fills (capacity 4, primed 2, nobody drains): fires
	// are bounded by both. Either way, far below free-running 100.
	if w.Fires() > int64(ChannelCapacity) {
		t.Errorf("wrapper fired %d times with a dead input", w.Fires())
	}
	if w.Stalled() == 0 {
		t.Error("wrapper never counted a stall")
	}
}

func TestChannelPrimedWithInitialTokens(t *testing.T) {
	ch := NewChannel("c", 100)
	if ch.Len() != InitialTokens {
		t.Errorf("channel primed with %d tokens, want %d", ch.Len(), InitialTokens)
	}
	if !ch.Valid(0) {
		t.Error("primed tokens not immediately visible")
	}
	tok := ch.Pop(0)
	if !tok.Empty() {
		t.Error("primed token not empty")
	}
}

func TestActorAdapters(t *testing.T) {
	core := router.NewCore("R", 3, layout)
	ra := NewRouterActor(core)
	if ra.Ports() != 3 || ra.ActorName() != "R" {
		t.Error("router actor identity")
	}
	out := ra.Fire(0, make([]phit.Flit, 3))
	if len(out) != 3 {
		t.Errorf("router actor produced %d tokens", len(out))
	}
	tb := slots.NewTable(2)
	n := ni.New("N", clock.NewMHz("c", 500, 0), layout, tb, nil, nil)
	na := NewNIActor(n)
	if na.Ports() != 1 || na.ActorName() != "N" {
		t.Error("NI actor identity")
	}
	out = na.Fire(0, make([]phit.Flit, 1))
	if len(out) != 1 || !out[0].Empty() {
		t.Errorf("idle NI actor produced %v", out)
	}
}
