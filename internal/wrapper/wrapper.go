package wrapper

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/ni"
	"repro/internal/phit"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/trace"
)

// InitialTokens is the uniform initial marking of every channel. Two
// tokens decouple neighbouring fire schedules enough that the steady-state
// iteration period equals the flit cycle of the slowest element (with one
// token, the round-trip dependency between neighbours would throttle the
// network below full rate).
const InitialTokens = 2

// ChannelCapacity is the token capacity of a channel (the combined OPI and
// IPI FIFO depth in flits).
const ChannelCapacity = 4

// Channel is the asynchronous link between two wrapped elements.
type Channel = sim.TokenChannel[phit.Flit]

// NewChannel builds a primed channel. delay is the token transfer latency
// (registered fire plus wire), typically two nominal clock cycles.
func NewChannel(name string, delay clock.Duration) *Channel {
	ch := sim.NewTokenChannel[phit.Flit](name, ChannelCapacity, delay)
	for i := 0; i < InitialTokens; i++ {
		ch.Prime(phit.Flit{})
	}
	return ch
}

// An Actor is a network element that advances in whole flit cycles.
type Actor interface {
	// Fire consumes one token per input port and produces one per
	// output port.
	Fire(now clock.Time, in []phit.Flit) []phit.Flit
	// Ports returns the number of input/output ports.
	Ports() int
	// ActorName identifies the element.
	ActorName() string
}

// RouterActor adapts an aelite router core.
type RouterActor struct {
	Core *router.Core
	out  []phit.Flit
}

// NewRouterActor wraps a router core.
func NewRouterActor(c *router.Core) *RouterActor { return &RouterActor{Core: c} }

// Fire implements Actor.
func (r *RouterActor) Fire(now clock.Time, in []phit.Flit) []phit.Flit {
	r.Core.SetNow(now)
	r.out = r.Core.StepFlitDirect(in, r.out)
	return r.out
}

// Ports implements Actor.
func (r *RouterActor) Ports() int { return r.Core.Arity() }

// ActorName implements Actor.
func (r *RouterActor) ActorName() string { return r.Core.Name() }

// NIActor adapts an aelite NI (which must not itself be registered with
// the engine).
type NIActor struct {
	NI  *ni.NI
	out []phit.Flit
}

// NewNIActor wraps an NI.
func NewNIActor(n *ni.NI) *NIActor { return &NIActor{NI: n, out: make([]phit.Flit, 1)} }

// Fire implements Actor.
func (a *NIActor) Fire(now clock.Time, in []phit.Flit) []phit.Flit {
	a.out[0] = a.NI.StepFlit(now, in[0])
	return a.out
}

// Ports implements Actor.
func (a *NIActor) Ports() int { return 1 }

// ActorName implements Actor.
func (a *NIActor) ActorName() string { return a.NI.Name() }

// A Wrapper is the engine component: PIC plus port interfaces around an
// actor.
type Wrapper struct {
	name  string
	clk   *clock.Clock
	actor Actor

	in  []*Channel // nil for unconnected ports
	out []*Channel

	busy    int // cycles remaining in the current fire window
	fires   int64
	stalled int64 // cycles spent waiting for tokens or space

	// stallFault is an injected PIC stall: cycles during which the
	// wrapper refuses to fire even when its PIs are ready, exercising the
	// empty-token liveness machinery.
	stallFault int

	// rep receives envelope violations; nil preserves fail-fast panics.
	rep fault.Reporter

	// tr, when non-nil, receives one WrapperFire event per completed
	// dataflow iteration, with the cumulative stall count as Arg.
	tr *trace.Emitter

	inBuf []phit.Flit
}

// New builds a wrapper around an actor on its own clock. Connect ports
// with ConnectIn/ConnectOut before registering with the engine.
func New(name string, clk *clock.Clock, actor Actor) *Wrapper {
	return &Wrapper{
		name:  name,
		clk:   clk,
		actor: actor,
		in:    make([]*Channel, actor.Ports()),
		out:   make([]*Channel, actor.Ports()),
		inBuf: make([]phit.Flit, actor.Ports()),
	}
}

// ConnectIn attaches the channel feeding input port i.
func (w *Wrapper) ConnectIn(i int, ch *Channel) { w.in[i] = ch }

// ConnectOut attaches the channel driven by output port i.
func (w *Wrapper) ConnectOut(i int, ch *Channel) { w.out[i] = ch }

// SetReporter routes the wrapper's envelope checks to r; nil restores the
// fail-fast panics.
func (w *Wrapper) SetReporter(r fault.Reporter) { w.rep = r }

// SetTracer installs the wrapper's lifecycle-event emitter; nil disables
// tracing.
func (w *Wrapper) SetTracer(e *trace.Emitter) { w.tr = e }

// Stall injects a PIC stall: for the given number of this wrapper's clock
// cycles the PIC will not fire regardless of token availability, modelling
// a slow or hung element behind the port interfaces.
func (w *Wrapper) Stall(cycles int) {
	if cycles > 0 {
		w.stallFault += cycles
	}
}

// Actor returns the wrapped dataflow actor.
func (w *Wrapper) Actor() Actor { return w.actor }

// Fires returns the number of completed dataflow iterations.
func (w *Wrapper) Fires() int64 { return w.fires }

// Stalled returns the number of cycles the PIC waited for a neighbour.
func (w *Wrapper) Stalled() int64 { return w.stalled }

// Name implements sim.Component.
func (w *Wrapper) Name() string { return w.name }

// Clock implements sim.Component.
func (w *Wrapper) Clock() *clock.Clock { return w.clk }

// Sample implements sim.Component.
func (w *Wrapper) Sample(now clock.Time) {}

// Update implements sim.Component.
func (w *Wrapper) Update(now clock.Time) {
	if w.stallFault > 0 {
		w.stallFault--
		w.stalled++
		return
	}
	if w.busy > 0 {
		w.busy--
		return
	}
	// PIC firing rule: every connected IPI has a token, every connected
	// OPI has space.
	for _, ch := range w.in {
		if ch != nil && !ch.Valid(now) {
			w.stalled++
			return
		}
	}
	for _, ch := range w.out {
		if ch != nil && !ch.CanPush() {
			w.stalled++
			return
		}
	}
	for i, ch := range w.in {
		if ch != nil {
			w.inBuf[i] = ch.Pop(now)
		} else {
			w.inBuf[i] = phit.Flit{}
		}
	}
	out := w.actor.Fire(now, w.inBuf)
	for i, ch := range w.out {
		if ch != nil {
			ch.Push(now, out[i])
		} else if !out[i].Empty() {
			fault.Report(w.rep, fault.Violation{
				Kind: fault.RouteError, Component: "wrapper " + w.name, Time: now, Slot: fault.NoSlot,
				Detail: fmt.Sprintf("flit for unconnected output %d, flit dropped", i),
			})
		}
	}
	w.fires++
	w.busy = phit.FlitWords - 1 // a fire occupies one whole flit cycle
	if w.tr != nil {
		w.tr.Emit(trace.Event{Time: now, Kind: trace.WrapperFire, Arg: w.stalled, Slot: trace.NoSlot})
	}
}
