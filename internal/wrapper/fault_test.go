package wrapper

import (
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/sim"
)

// chattyActor emits a non-empty flit on port 1 every fire — pointed at a
// wrapper whose port 1 is unconnected, it trips the route-error envelope
// check on every iteration.
type chattyActor struct {
	out []phit.Flit
}

func (a *chattyActor) Fire(now clock.Time, in []phit.Flit) []phit.Flit {
	a.out[1][0] = phit.Phit{Valid: true, Kind: phit.Payload, Data: 7}
	return a.out
}

func (a *chattyActor) Ports() int        { return 2 }
func (a *chattyActor) ActorName() string { return "chatty" }

// runChatty builds a wrapper around chattyActor with output 1 unconnected
// and runs it. The primed input channel allows InitialTokens fires, each of
// which produces a flit for the missing output.
func runChatty(rep fault.Reporter) *Wrapper {
	eng := sim.New()
	base := clock.NewMHz("base", 500, 0)
	w := New("w", base, &chattyActor{out: make([]phit.Flit, 2)})
	w.SetReporter(rep)
	in := NewChannel("in", 2*base.Period)
	out := NewChannel("out", 2*base.Period)
	eng.AddWire(in)
	eng.AddWire(out)
	w.ConnectIn(0, in)
	w.ConnectOut(0, out)
	// Port 1 left unconnected on both sides.
	eng.Add(w)
	eng.Run(60 * base.Period)
	return w
}

// TestWrapperUnconnectedOutput: a valid flit for an unconnected output
// panics in strict mode and is recorded (and dropped) in collecting mode,
// with the wrapper continuing to fire.
func TestWrapperUnconnectedOutput(t *testing.T) {
	t.Run("strict", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic in strict mode")
			}
		}()
		runChatty(nil)
	})
	t.Run("collect", func(t *testing.T) {
		col := fault.NewCollector()
		w := runChatty(col)
		if col.Total() == 0 {
			t.Fatal("no violations collected")
		}
		for _, v := range col.Violations() {
			if v.Kind != fault.RouteError {
				t.Errorf("unexpected violation kind %v", v.Kind)
			}
		}
		// The wrapper must have kept firing after the first violation:
		// the primed input channel allows InitialTokens iterations.
		if w.Fires() < InitialTokens {
			t.Errorf("wrapper fired %d times, want at least %d — stopped after a collected violation",
				w.Fires(), InitialTokens)
		}
	})
}

// TestWrapperStallFreezesFires: an injected PIC stall holds the wrapper at
// its pre-stall fire count for the stall duration, and the stall cycles are
// accounted as such.
func TestWrapperStallFreezesFires(t *testing.T) {
	free := buildRing(t, 0, 0, 0)
	free.eng.Run(600 * free.base.Period)
	freeFires := free.wr.Fires()
	if freeFires < 150 {
		t.Fatalf("unstalled router wrapper fired only %d times", freeFires)
	}

	r := buildRing(t, 0, 0, 0)
	r.wr.Stall(100000) // far longer than the run
	stalledBefore := r.wr.Stalled()
	r.eng.Run(600 * r.base.Period)
	if got := r.wr.Fires(); got != 0 {
		t.Errorf("stalled wrapper fired %d times, want 0", got)
	}
	if r.wr.Stalled() == stalledBefore {
		t.Error("stall cycles not accounted")
	}

	// Non-positive stalls are ignored; positive ones accumulate.
	w := New("acc", clock.NewMHz("c", 500, 0), &chattyActor{out: make([]phit.Flit, 2)})
	w.Stall(-5)
	w.Stall(0)
	if w.stallFault != 0 {
		t.Errorf("non-positive stall changed the fault counter to %d", w.stallFault)
	}
	w.Stall(3)
	w.Stall(4)
	if w.stallFault != 7 {
		t.Errorf("stalls did not accumulate: %d, want 7", w.stallFault)
	}
}

// runStalledRing builds the plesiochronous ring, stalls the router wrapper
// for the whole run, and watches all three wrappers with a liveness
// checker.
func runStalledRing(t *testing.T, rep fault.Reporter) {
	t.Helper()
	r := buildRing(t, +300, -250, +120)
	r.wr.Stall(100000)
	lc := fault.NewLivenessChecker("check.liveness", r.base,
		[]fault.Progress{r.wa, r.wb, r.wr}, 60, rep)
	r.eng.Add(lc)
	r.eng.Run(600 * r.base.Period)
}

// TestLivenessCheckerCatchesStalledWrapper: the Section VI empty-token
// liveness claim is observable — a wrapper that stops firing is reported as
// a Liveness violation naming it, in collecting mode, and panics the run in
// strict mode.
func TestLivenessCheckerCatchesStalledWrapper(t *testing.T) {
	t.Run("strict", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic in strict mode")
			}
		}()
		runStalledRing(t, nil)
	})
	t.Run("collect", func(t *testing.T) {
		col := fault.NewCollector()
		runStalledRing(t, col)
		if col.CountByKind()[fault.Liveness] == 0 {
			t.Fatalf("no liveness violations in %v", col.Violations())
		}
		found := false
		for _, v := range col.Violations() {
			if v.Kind == fault.Liveness && strings.Contains(v.Detail, "wrap.R") {
				found = true
			}
		}
		if !found {
			t.Errorf("no liveness violation names the stalled wrapper: %v", col.Violations())
		}
	})
}
