// Package wrapper implements the asynchronous wrapper of paper Section VI,
// which turns aelite routers and NIs into stallable dataflow actors so the
// network can operate plesiochronously (or heterochronously): every
// element runs on its own clock and only proceeds from one flit cycle
// (dataflow iteration) to the next once it has synchronised with all its
// neighbours.
//
// Structure, following the paper's Figure 4:
//
//   - every port is managed by a Port Interface: Input PIs (IPI) hold a
//     FIFO and a counter of available words, Output PIs (OPI) a counter of
//     unreserved space. Here both are modelled by the token channels
//     between wrappers: a token is one flit; an IPI "fires" when a token
//     is available, an OPI when space for one token is free.
//   - the Port Interface Controller (PIC) fires once all PIs fire; the
//     fire pops one token from every input, runs the wrapped element for
//     one flit cycle, and pushes one token on every output. Output space
//     is reserved at fire time (the OPI counter decrements "as soon as
//     input data is forwarded to the router"), which here is the push
//     itself; the 2-cycle registered-fire delay to the OPIs is the
//     channel's transfer delay.
//   - when an element has nothing to send, it still produces *empty
//     tokens* so its neighbours can keep iterating, and at reset every
//     channel is primed with InitialTokens empty tokens — without them the
//     system deadlocks (both straight from the paper).
//
// Slot alignment: each channel's InitialTokens initial marking makes a
// flit advance InitialTokens dataflow iterations per hop, so the TDM slot
// allocation must shift reservations by InitialTokens slots per hop
// instead of one — the paper's "the delay involved in clock-domain
// crossing is hidden by adapting the slot allocation". Callers achieve
// this by setting every link's PipelineStages to InitialTokens-1 before
// routing (core.PrepareTopology does it for Mode Asynchronous).
package wrapper
