package aethereal

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

var layout = phit.DefaultLayout

// beHarness: NI A -> router (port 0 in, port 1 out) -> NI B.
type beHarness struct {
	eng  *sim.Engine
	clk  *clock.Clock
	a, b *NI
	r    *Router
}

func newBEHarness(t *testing.T, bufWords, maxPacket int) *beHarness {
	t.Helper()
	eng := sim.New()
	clk := clock.NewMHz("clk", 500, 0)
	mk := func(name string) (*sim.Wire[phit.Phit], *sim.Wire[int]) {
		d := sim.NewWire[phit.Phit](name + ".d")
		c := sim.NewWire[int](name + ".c")
		eng.AddWire(d)
		eng.AddWire(c)
		return d, c
	}
	aToR, aToRc := mk("a>r")
	rToB, rToBc := mk("r>b")
	bToR, bToRc := mk("b>r")
	rToA, rToAc := mk("r>a")

	r := NewRouter("R", 2, layout, clk, bufWords)
	r.ConnectIn(0, aToR, aToRc)
	r.ConnectIn(1, bToR, bToRc)
	r.ConnectOut(0, rToA, rToAc, bufWords)
	r.ConnectOut(1, rToB, rToBc, bufWords)

	a := NewNI("A", clk, layout, rToA, aToR, aToRc, rToAc, bufWords, maxPacket)
	b := NewNI("B", clk, layout, rToB, bToR, bToRc, rToBc, bufWords, maxPacket)

	hdrAB, _ := layout.Encode([]int{1}, 0, 0)
	a.AddOutConn(OutConnConfig{ID: 1, Header: hdrAB})
	b.AddInConn(InConnConfig{ID: 1, QID: 0})

	eng.Add(r)
	eng.Add(a)
	eng.Add(b)
	return &beHarness{eng: eng, clk: clk, a: a, b: b, r: r}
}

func (h *beHarness) cycles(n int64) { h.eng.Run(h.eng.Now() + clock.Time(n)*h.clk.Period) }

func TestBEDelivery(t *testing.T) {
	h := newBEHarness(t, 8, 16)
	for i := 0; i < 20; i++ {
		if !h.a.Offer(h.eng.Now(), 1, phit.Meta{Seq: int64(i), Injected: h.eng.Now()}) {
			t.Fatalf("Offer %d rejected", i)
		}
	}
	h.cycles(100)
	if got := h.b.Delivered(1); got != 20 {
		t.Fatalf("delivered %d of 20", got)
	}
	lat := h.b.Latency(1)
	if lat.Min() <= 0 || lat.Max() < lat.Min() {
		t.Errorf("latency stats: min %v max %v", lat.Min(), lat.Max())
	}
	if h.r.Forwarded() < 20 {
		t.Errorf("router forwarded %d", h.r.Forwarded())
	}
	first, last := h.b.Span(1)
	if first <= 0 || last <= first {
		t.Errorf("span %v..%v", first, last)
	}
}

func TestBEPacketisationMaxLength(t *testing.T) {
	h := newBEHarness(t, 8, 4)
	for i := 0; i < 10; i++ {
		h.a.Offer(h.eng.Now(), 1, phit.Meta{Seq: int64(i), Injected: h.eng.Now()})
	}
	// Count headers on the A->R wire: 10 words at max 4 payload per
	// packet = at least 3 headers.
	headers := 0
	for i := 0; i < 80; i++ {
		h.cycles(1)
		w := h.a.out.Read()
		if w.Valid && (w.Kind == phit.Header || w.Kind == phit.CreditOnly) {
			headers++
		}
	}
	if headers < 3 {
		t.Errorf("saw %d headers; max-packet 4 should force at least 3", headers)
	}
	if got := h.b.Delivered(1); got != 10 {
		t.Errorf("delivered %d", got)
	}
}

func TestBELinkLevelFlowControl(t *testing.T) {
	// Tiny buffers: words must still all arrive, never overflowing
	// (overflow panics).
	h := newBEHarness(t, 2, 16)
	for i := 0; i < 30; i++ {
		h.a.Offer(h.eng.Now(), 1, phit.Meta{Seq: int64(i), Injected: h.eng.Now()})
	}
	h.cycles(300)
	if got := h.b.Delivered(1); got != 30 {
		t.Fatalf("delivered %d of 30 with 2-word buffers", got)
	}
}

func TestBEArbitrationShares(t *testing.T) {
	// Two NIs (A and B) both sending to each other through one router:
	// round-robin must serve both.
	h := newBEHarness(t, 8, 8)
	hdrBA, _ := layout.Encode([]int{0}, 0, 0)
	h.b.AddOutConn(OutConnConfig{ID: 2, Header: hdrBA})
	h.a.AddInConn(InConnConfig{ID: 2, QID: 0})
	for i := 0; i < 15; i++ {
		h.a.Offer(h.eng.Now(), 1, phit.Meta{Seq: int64(i), Injected: h.eng.Now()})
		h.b.Offer(h.eng.Now(), 2, phit.Meta{Seq: int64(i), Injected: h.eng.Now()})
	}
	h.cycles(200)
	if got := h.b.Delivered(1); got != 15 {
		t.Errorf("A->B delivered %d", got)
	}
	if got := h.a.Delivered(2); got != 15 {
		t.Errorf("B->A delivered %d", got)
	}
}

func TestBEResetStatsAndArrivals(t *testing.T) {
	h := newBEHarness(t, 8, 16)
	h.b.RecordArrivals(1, true)
	for i := 0; i < 5; i++ {
		h.a.Offer(h.eng.Now(), 1, phit.Meta{Seq: int64(i), Injected: h.eng.Now()})
	}
	h.cycles(60)
	if got := len(h.b.Arrivals(1)); got != 5 {
		t.Errorf("recorded %d arrivals", got)
	}
	h.b.ResetStats()
	if h.b.Delivered(1) != 0 || len(h.b.Arrivals(1)) != 0 {
		t.Error("reset incomplete")
	}
}

func TestBERouterPanics(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	for name, f := range map[string]func(){
		"arity":  func() { NewRouter("r", 1, layout, clk, 8) },
		"layout": func() { NewRouter("r", 2, phit.HeaderLayout{}, clk, 8) },
		"buffer": func() { NewRouter("r", 2, layout, clk, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBENIPanics(t *testing.T) {
	clk := clock.NewMHz("clk", 500, 0)
	n := NewNI("n", clk, layout, nil, nil, nil, nil, 8, 16)
	for name, f := range map[string]func(){
		"zero packet": func() { NewNI("n", clk, layout, nil, nil, nil, nil, 8, -1) },
		"dup out": func() {
			n.AddOutConn(OutConnConfig{ID: 1})
			n.AddOutConn(OutConnConfig{ID: 1})
		},
		"unknown offer": func() { n.Offer(0, 99, phit.Meta{}) },
		"unknown in":    func() { n.Delivered(42) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
