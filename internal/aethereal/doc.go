// Package aethereal implements the baseline the paper compares against: a
// combined guaranteed-service / best-effort (GS+BE) Æthereal-style router
// network operated in best-effort mode (paper Section VII's second
// experiment runs all 200 connections as BE on the same mapping and
// paths).
//
// Unlike the aelite router, the BE router needs everything aelite deleted:
//
//   - input buffers several words deep per port;
//   - link-level flow control (credits) so those buffers never overflow;
//   - per-output round-robin arbitration, with wormhole packet locking
//     (a packet holds its output from header to End-of-Packet);
//   - consequently, its area and frequency suffer (captured in the area
//     model) and its latency depends on other traffic — composability is
//     lost, which the simulation makes visible.
//
// Source routing and header encoding are shared with aelite (package
// phit), as in the real Æthereal family.
//
// The package shares topology, route and phit with the aelite network so
// experiments.Compare (Section VII) runs both backends on the identical
// mapping, paths and header encoding; only arbitration differs.
package aethereal
