package aethereal

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
)

// DefaultBufferWords is the default per-input buffer depth of the BE
// router.
const DefaultBufferWords = 8

// A Router is the best-effort wormhole router component.
type Router struct {
	name   string
	clk    *clock.Clock
	layout phit.HeaderLayout
	arity  int
	bufCap int

	in        []*sim.Wire[phit.Phit]
	out       []*sim.Wire[phit.Phit]
	creditIn  []*sim.Wire[int] // per output port, freed credits from downstream
	creditOut []*sim.Wire[int] // per input port, credits we free toward upstream

	inBuf  [][]phit.Phit
	curOut []int // output port of the packet currently crossing input i
	routed []bool
	locked []int // input currently owning output o, or -1
	rrPtr  []int // round-robin pointer per output

	outCredit []int // credits toward each downstream input buffer

	sampledIn     []phit.Phit
	sampledCredit []int

	forwarded int64
	stalls    int64 // cycles an output wanted to send but had no credit
}

// NewRouter builds a BE router with the given arity and input buffer
// depth (0 selects DefaultBufferWords). Downstream buffer depths are set
// per output with SetOutCredits once the topology is wired.
func NewRouter(name string, arity int, layout phit.HeaderLayout, clk *clock.Clock, bufWords int) *Router {
	if arity < 2 {
		panic(fmt.Sprintf("aethereal %s: arity %d below minimum 2", name, arity))
	}
	if err := layout.Validate(); err != nil {
		panic(fmt.Sprintf("aethereal %s: %v", name, err))
	}
	if bufWords == 0 {
		bufWords = DefaultBufferWords
	}
	if bufWords < 2 {
		panic(fmt.Sprintf("aethereal %s: buffer of %d words cannot cover the credit loop", name, bufWords))
	}
	r := &Router{
		name:          name,
		clk:           clk,
		layout:        layout,
		arity:         arity,
		bufCap:        bufWords,
		in:            make([]*sim.Wire[phit.Phit], arity),
		out:           make([]*sim.Wire[phit.Phit], arity),
		creditIn:      make([]*sim.Wire[int], arity),
		creditOut:     make([]*sim.Wire[int], arity),
		inBuf:         make([][]phit.Phit, arity),
		curOut:        make([]int, arity),
		routed:        make([]bool, arity),
		locked:        make([]int, arity),
		rrPtr:         make([]int, arity),
		outCredit:     make([]int, arity),
		sampledIn:     make([]phit.Phit, arity),
		sampledCredit: make([]int, arity),
	}
	for i := range r.locked {
		r.locked[i] = -1
	}
	return r
}

// ConnectIn wires input port i: data arriving and the credit return path.
func (r *Router) ConnectIn(i int, data *sim.Wire[phit.Phit], credit *sim.Wire[int]) {
	r.in[i] = data
	r.creditOut[i] = credit
}

// ConnectOut wires output port i: data leaving and freed credits coming
// back; downstreamBuf is the downstream input buffer depth (the initial
// credit count).
func (r *Router) ConnectOut(i int, data *sim.Wire[phit.Phit], credit *sim.Wire[int], downstreamBuf int) {
	r.out[i] = data
	r.creditIn[i] = credit
	r.outCredit[i] = downstreamBuf
}

// BufferWords returns the per-input buffer depth.
func (r *Router) BufferWords() int { return r.bufCap }

// Forwarded returns the number of words switched.
func (r *Router) Forwarded() int64 { return r.forwarded }

// Stalls returns the number of output-cycles lost to credit exhaustion.
func (r *Router) Stalls() int64 { return r.stalls }

// Name implements sim.Component.
func (r *Router) Name() string { return r.name }

// Clock implements sim.Component.
func (r *Router) Clock() *clock.Clock { return r.clk }

// Sample implements sim.Component.
func (r *Router) Sample(now clock.Time) {
	for i := 0; i < r.arity; i++ {
		if r.in[i] != nil {
			r.sampledIn[i] = r.in[i].Read()
		} else {
			r.sampledIn[i] = phit.IdlePhit
		}
		if r.creditIn[i] != nil {
			r.sampledCredit[i] = r.creditIn[i].Read()
		} else {
			r.sampledCredit[i] = 0
		}
	}
}

// headPort returns the output port requested by input i's head word,
// computing and latching it when the head is a header.
func (r *Router) headPort(i int) int {
	if len(r.inBuf[i]) == 0 {
		return -1
	}
	if !r.routed[i] {
		h := r.inBuf[i][0]
		if h.Kind != phit.Header && h.Kind != phit.CreditOnly {
			panic(fmt.Sprintf("aethereal %s: input %d head is %v outside a packet (conn %d)",
				r.name, i, h.Kind, h.Meta.Conn))
		}
		port, shifted := r.layout.NextPort(h.Data)
		h.Data = shifted
		r.inBuf[i][0] = h
		r.curOut[i] = port
		r.routed[i] = true
	}
	return r.curOut[i]
}

// Update implements sim.Component.
func (r *Router) Update(now clock.Time) {
	// Credits freed downstream become usable next cycle.
	for o := 0; o < r.arity; o++ {
		r.outCredit[o] += r.sampledCredit[o]
	}
	freed := make([]int, r.arity)

	// Arbitrate each output.
	for o := 0; o < r.arity; o++ {
		if r.out[o] == nil {
			continue
		}
		src := r.locked[o]
		if src < 0 {
			// Round-robin over inputs whose head requests o.
			for k := 1; k <= r.arity; k++ {
				i := (r.rrPtr[o] + k) % r.arity
				if len(r.inBuf[i]) > 0 && r.headPort(i) == o {
					// An input can only win a new output if it
					// is not mid-packet on another one.
					src = i
					r.rrPtr[o] = i
					break
				}
			}
		}
		if src < 0 || len(r.inBuf[src]) == 0 {
			r.out[o].Drive(phit.IdlePhit)
			continue
		}
		if r.outCredit[o] == 0 {
			r.stalls++
			r.out[o].Drive(phit.IdlePhit)
			r.locked[o] = src // hold the output while stalled mid-packet
			continue
		}
		w := r.inBuf[src][0]
		r.inBuf[src] = r.inBuf[src][1:]
		freed[src]++
		r.outCredit[o]--
		r.forwarded++
		if w.EoP {
			r.locked[o] = -1
			r.routed[src] = false
		} else {
			r.locked[o] = src
		}
		r.out[o].Drive(w)
	}

	// Accept arriving words after switching: a word needs a full cycle
	// in the buffer before it can leave.
	for i := 0; i < r.arity; i++ {
		if !r.sampledIn[i].Valid {
			continue
		}
		if len(r.inBuf[i]) >= r.bufCap {
			panic(fmt.Sprintf("aethereal %s: input %d buffer overflow — link-level flow control violated", r.name, i))
		}
		r.inBuf[i] = append(r.inBuf[i], r.sampledIn[i])
	}
	for i := 0; i < r.arity; i++ {
		if r.creditOut[i] != nil {
			r.creditOut[i].Drive(freed[i])
		}
	}
}
