package aethereal

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/phit"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultMaxPacketWords caps BE packet payload length; long packets
// amortise the header but worsen head-of-line blocking.
const DefaultMaxPacketWords = 16

// SendCapacity is the IP-side FIFO depth per connection, matching the
// aelite NI default so the two networks face identical IP behaviour.
const SendCapacity = 32

// OutConnConfig configures a connection sourced at a BE NI.
type OutConnConfig struct {
	ID     phit.ConnID
	Header phit.Word // path + destination queue id, zero credits
}

// InConnConfig configures a connection terminating at a BE NI.
type InConnConfig struct {
	ID  phit.ConnID
	QID int
}

type beOut struct {
	cfg   OutConnConfig
	queue *sim.Bisync[phit.Meta]
	sent  int64
}

type beIn struct {
	cfg       InConnConfig
	delivered int64
	latency   stats.Histogram
	firstNs   float64
	lastNs    float64
	record    bool
	arrivals  []clock.Time
}

// An NI is the best-effort network interface: no TDM, no end-to-end
// credit accounting (receive queues are drained at line rate by the
// modelled IPs, a simplification that favours the BE baseline — see
// DESIGN.md). Packets are injected as fast as link-level credits allow,
// connections served round-robin.
type NI struct {
	name   string
	clk    *clock.Clock
	layout phit.HeaderLayout

	in        *sim.Wire[phit.Phit]
	out       *sim.Wire[phit.Phit]
	creditIn  *sim.Wire[int]
	creditOut *sim.Wire[int]

	outConns  map[phit.ConnID]*beOut
	order     []phit.ConnID // deterministic round-robin order
	inByQID   map[int]*beIn
	inByID    map[phit.ConnID]*beIn
	maxPacket int

	// Sender state.
	linkCredit int
	rr         int
	openConn   *beOut
	openWords  int

	// Receiver state.
	curIn    *beIn
	inPacket bool

	sampledIn     phit.Phit
	sampledCredit int

	tr *trace.Emitter
}

// NewNI builds a BE NI. downstreamBuf is the attached router's input
// buffer depth (initial link credits); maxPacket of 0 selects
// DefaultMaxPacketWords.
func NewNI(name string, clk *clock.Clock, layout phit.HeaderLayout,
	in, out *sim.Wire[phit.Phit], creditIn, creditOut *sim.Wire[int],
	downstreamBuf, maxPacket int) *NI {
	if maxPacket == 0 {
		maxPacket = DefaultMaxPacketWords
	}
	if maxPacket < 1 {
		panic(fmt.Sprintf("aethereal %s: max packet %d", name, maxPacket))
	}
	return &NI{
		name: name, clk: clk, layout: layout,
		in: in, out: out, creditIn: creditIn, creditOut: creditOut,
		outConns:   make(map[phit.ConnID]*beOut),
		inByQID:    make(map[int]*beIn),
		inByID:     make(map[phit.ConnID]*beIn),
		maxPacket:  maxPacket,
		linkCredit: downstreamBuf,
	}
}

// AddOutConn registers a sourced connection.
func (n *NI) AddOutConn(cfg OutConnConfig) {
	if _, dup := n.outConns[cfg.ID]; dup {
		panic(fmt.Sprintf("aethereal %s: duplicate out connection %d", n.name, cfg.ID))
	}
	n.outConns[cfg.ID] = &beOut{
		cfg:   cfg,
		queue: sim.NewBisync[phit.Meta](fmt.Sprintf("%s.c%d.send", n.name, cfg.ID), SendCapacity, n.clk.Period),
	}
	n.order = append(n.order, cfg.ID)
	sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
}

// AddInConn registers a terminating connection.
func (n *NI) AddInConn(cfg InConnConfig) {
	if _, dup := n.inByQID[cfg.QID]; dup {
		panic(fmt.Sprintf("aethereal %s: duplicate queue id %d", n.name, cfg.QID))
	}
	ic := &beIn{cfg: cfg}
	n.inByQID[cfg.QID] = ic
	n.inByID[cfg.ID] = ic
}

// Offer enqueues a payload word from the IP (blocking-write semantics).
func (n *NI) Offer(now clock.Time, conn phit.ConnID, meta phit.Meta) bool {
	oc := n.outConns[conn]
	if oc == nil {
		panic(fmt.Sprintf("aethereal %s: unknown out connection %d", n.name, conn))
	}
	if !oc.queue.CanPush() {
		return false
	}
	meta.Conn = conn
	oc.queue.Push(now, meta)
	if n.tr != nil {
		n.tr.Emit(trace.Event{Time: now, Kind: trace.Inject, Conn: conn, Seq: meta.Seq, Slot: trace.NoSlot})
	}
	return true
}

// SetTracer installs the NI's lifecycle-event emitter; nil disables
// emission (the default: an untraced NI pays no per-event cost).
func (n *NI) SetTracer(e *trace.Emitter) { n.tr = e }

// Name implements sim.Component.
func (n *NI) Name() string { return n.name }

// Clock implements sim.Component.
func (n *NI) Clock() *clock.Clock { return n.clk }

// Sample implements sim.Component.
func (n *NI) Sample(now clock.Time) {
	if n.in != nil {
		n.sampledIn = n.in.Read()
	} else {
		n.sampledIn = phit.IdlePhit
	}
	if n.creditIn != nil {
		n.sampledCredit = n.creditIn.Read()
	} else {
		n.sampledCredit = 0
	}
}

// Update implements sim.Component.
func (n *NI) Update(now clock.Time) {
	n.receive(now)
	n.linkCredit += n.sampledCredit
	n.send(now)
	// The modelled IP drains the receive path at line rate, so one
	// credit is returned per received word immediately.
	if n.creditOut != nil {
		if n.sampledIn.Valid {
			n.creditOut.Drive(1)
		} else {
			n.creditOut.Drive(0)
		}
	}
}

func (n *NI) receive(now clock.Time) {
	p := n.sampledIn
	if !p.Valid {
		return
	}
	if !n.inPacket {
		if p.Kind != phit.Header && p.Kind != phit.CreditOnly {
			panic(fmt.Sprintf("aethereal %s: expected header, got %v", n.name, p.Kind))
		}
		qid := n.layout.QID(p.Data)
		ic := n.inByQID[qid]
		if ic == nil {
			panic(fmt.Sprintf("aethereal %s: header for unknown queue %d", n.name, qid))
		}
		n.curIn = ic
		n.inPacket = true
	} else if p.Kind == phit.Payload {
		ic := n.curIn
		ic.delivered++
		if n.tr != nil {
			n.tr.Emit(trace.Event{Time: now, Ref: p.Meta.Injected, Kind: trace.Eject,
				Conn: ic.cfg.ID, Seq: p.Meta.Seq, Slot: trace.NoSlot})
		}
		ic.latency.Add(float64(now-p.Meta.Injected) / float64(clock.Nanosecond))
		ic.lastNs = float64(now) / float64(clock.Nanosecond)
		if ic.delivered == 1 {
			ic.firstNs = ic.lastNs
		}
		if ic.record {
			ic.arrivals = append(ic.arrivals, now)
		}
	}
	if p.EoP {
		n.inPacket = false
	}
}

func (n *NI) send(now clock.Time) {
	if n.out == nil {
		return
	}
	if n.linkCredit == 0 {
		n.out.Drive(phit.IdlePhit)
		return
	}
	if n.openConn == nil {
		// Pick the next connection with data, round-robin.
		for k := 0; k < len(n.order); k++ {
			id := n.order[(n.rr+k)%len(n.order)]
			oc := n.outConns[id]
			if oc.queue.Valid(now) {
				n.rr = (n.rr + k + 1) % len(n.order)
				n.openConn = oc
				n.openWords = 0
				n.linkCredit--
				n.out.Drive(phit.Phit{Valid: true, Kind: phit.Header, Data: oc.cfg.Header,
					Meta: phit.Meta{Conn: id}})
				return
			}
		}
		n.out.Drive(phit.IdlePhit)
		return
	}
	oc := n.openConn
	if !oc.queue.Valid(now) {
		// Nothing buffered mid-packet: terminate with a zero-payload
		// filler? BE wormhole cannot hold a packet open without data
		// indefinitely — close it. The EoP must ride a word; send a
		// padding word.
		n.linkCredit--
		n.out.Drive(phit.Phit{Valid: true, Kind: phit.Padding, EoP: true, Meta: phit.Meta{Conn: oc.cfg.ID}})
		n.openConn = nil
		return
	}
	meta := oc.queue.Pop(now)
	meta.Sent = now
	oc.sent++
	n.openWords++
	n.linkCredit--
	if n.tr != nil {
		n.tr.Emit(trace.Event{Time: now, Ref: meta.Injected, Kind: trace.Send,
			Conn: oc.cfg.ID, Seq: meta.Seq, Slot: trace.NoSlot})
	}
	eop := n.openWords >= n.maxPacket || !oc.queue.Valid(now)
	n.out.Drive(phit.Phit{Valid: true, Kind: phit.Payload, EoP: eop, Data: phit.Word(meta.Seq), Meta: meta})
	if eop {
		n.openConn = nil
	}
}

// Stats mirrors the aelite NI accessors so experiments can treat both
// backends uniformly.

// Delivered returns the payload word count of an in-connection.
func (n *NI) Delivered(conn phit.ConnID) int64 { return n.mustIn(conn).delivered }

// Latency returns the latency histogram of an in-connection.
func (n *NI) Latency(conn phit.ConnID) *stats.Histogram { return &n.mustIn(conn).latency }

// Span returns the first/last arrival times in ns of an in-connection.
func (n *NI) Span(conn phit.ConnID) (firstNs, lastNs float64) {
	ic := n.mustIn(conn)
	return ic.firstNs, ic.lastNs
}

// RecordArrivals toggles arrival logging for an in-connection.
func (n *NI) RecordArrivals(conn phit.ConnID, on bool) {
	ic := n.mustIn(conn)
	ic.record = on
	if !on {
		ic.arrivals = nil
	}
}

// Arrivals returns logged arrival instants.
func (n *NI) Arrivals(conn phit.ConnID) []clock.Time {
	return append([]clock.Time(nil), n.mustIn(conn).arrivals...)
}

// ResetStats clears measurements without touching protocol state.
func (n *NI) ResetStats() {
	for _, ic := range n.inByID {
		ic.delivered = 0
		ic.latency = stats.Histogram{}
		ic.firstNs = 0
		ic.lastNs = 0
		ic.arrivals = nil
	}
	for _, oc := range n.outConns {
		oc.sent = 0
	}
}

func (n *NI) mustIn(conn phit.ConnID) *beIn {
	ic := n.inByID[conn]
	if ic == nil {
		panic(fmt.Sprintf("aethereal %s: unknown in connection %d", n.name, conn))
	}
	return ic
}
