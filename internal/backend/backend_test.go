package backend

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/routerless"
	"repro/internal/scenario"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// recSink records the full event stream as deterministic text, so two
// runs can be compared byte for byte.
type recSink struct{ buf bytes.Buffer }

func (s *recSink) Event(ev trace.Event) {
	fmt.Fprintf(&s.buf, "%d %d %d %d %d %d %d %d\n",
		ev.Time, ev.Ref, ev.Conn, ev.Seq, ev.Arg, ev.Comp, ev.Slot, ev.Kind)
}

// runnable is the slice of behaviour the equivalence check needs; both
// the direct constructors' networks and seam Instances satisfy it.
type runnable interface {
	AttachTracer(bus *trace.Bus)
	Run(warmupNs, measureNs float64) *core.Report
}

// observation is everything externally visible about one run: the
// rendered report, the metrics JSON and the raw event stream.
type observation struct {
	report  []byte
	metrics []byte
	events  []byte
}

// observe runs n under a fresh bus with a recording sink and a metrics
// aggregator attached, capturing all three observable surfaces.
func observe(t *testing.T, n runnable, freqMHz float64) observation {
	t.Helper()
	bus := trace.NewBus()
	rec := &recSink{}
	bus.Attach(rec)
	met := trace.NewMetrics(bus)
	n.AttachTracer(bus)
	rep := n.Run(2000, 8000)
	var report bytes.Buffer
	rep.Write(&report)
	var mjson bytes.Buffer
	if err := met.Report(0, int64(clock.PeriodFromMHz(freqMHz))).WriteJSON(&mjson); err != nil {
		t.Fatal(err)
	}
	return observation{report: report.Bytes(), metrics: mjson.Bytes(), events: rec.buf.Bytes()}
}

// testWorkload regenerates the same scenario from scratch: a use case is
// never shared across builds, so each side of an equivalence check gets
// its own copy from the same seed.
func testWorkload(t *testing.T, seed int64) (*topology.Mesh, *spec.UseCase, scenario.Config) {
	t.Helper()
	cfg := scenario.Default(scenario.Uniform, 3, 3, 8, seed)
	s, err := scenario.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Mesh(), s.UseCase, cfg
}

// requireIdentical asserts two observations agree on every surface.
func requireIdentical(t *testing.T, direct, seam observation) {
	t.Helper()
	if len(direct.events) == 0 {
		t.Fatal("direct run emitted no events; the comparison would be vacuous")
	}
	if !bytes.Equal(direct.report, seam.report) {
		t.Errorf("reports differ:\n-- direct --\n%s\n-- seam --\n%s", direct.report, seam.report)
	}
	if !bytes.Equal(direct.metrics, seam.metrics) {
		t.Error("metrics JSON differs between direct and seam builds")
	}
	if !bytes.Equal(direct.events, seam.events) {
		t.Error("event streams differ between direct and seam builds")
	}
}

// TestAeliteSeamEquivalence is the refactor's no-observable-change
// gate: a same-seed aelite run built through the backend seam must be
// byte-identical to one built through core.PrepareTopology+core.Build
// directly — reports, metrics JSON and event streams — in all three
// clocking modes.
func TestAeliteSeamEquivalence(t *testing.T) {
	const seed = 77
	for _, mode := range []core.Mode{core.Synchronous, core.Mesochronous, core.Asynchronous} {
		t.Run(mode.String(), func(t *testing.T) {
			m, uc, scfg := testWorkload(t, seed)
			cfg := core.Config{FreqMHz: scfg.FreqMHz, WordBytes: scfg.WordBytes,
				TableSize: scfg.TableSize, Mode: mode}
			core.PrepareTopology(m, cfg)
			n, err := core.Build(m, uc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			direct := observe(t, n, scfg.FreqMHz)

			b, err := ByName("aelite")
			if err != nil {
				t.Fatal(err)
			}
			m2, uc2, _ := testWorkload(t, seed)
			inst, err := b.Build(m2, uc2, Params{FreqMHz: scfg.FreqMHz,
				WordBytes: scfg.WordBytes, TableSize: scfg.TableSize, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, direct, observe(t, inst, scfg.FreqMHz))
		})
	}
}

// TestAetherealSeamEquivalence checks the GS+BE baseline the same way:
// a zero-field Params build must match a zero-config core.BuildBE, with
// only the frequency forwarded, so ApplyDefaults resolves identically
// on both sides.
func TestAetherealSeamEquivalence(t *testing.T) {
	const seed = 78
	m, uc, scfg := testWorkload(t, seed)
	n, err := core.BuildBE(m, uc, core.BEConfig{FreqMHz: scfg.FreqMHz})
	if err != nil {
		t.Fatal(err)
	}
	direct := observe(t, n, scfg.FreqMHz)

	b, err := ByName("aethereal")
	if err != nil {
		t.Fatal(err)
	}
	m2, uc2, _ := testWorkload(t, seed)
	inst, err := b.Build(m2, uc2, Params{FreqMHz: scfg.FreqMHz})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, direct, observe(t, inst, scfg.FreqMHz))
}

// TestRouterlessSeamEquivalence checks the ring overlay through the
// seam against routerless.Build directly.
func TestRouterlessSeamEquivalence(t *testing.T) {
	const seed = 79
	m, uc, scfg := testWorkload(t, seed)
	n, err := routerless.Build(m, uc, routerless.Config{FreqMHz: scfg.FreqMHz, WordBytes: scfg.WordBytes})
	if err != nil {
		t.Fatal(err)
	}
	direct := observe(t, n, scfg.FreqMHz)

	b, err := ByName("routerless")
	if err != nil {
		t.Fatal(err)
	}
	m2, uc2, _ := testWorkload(t, seed)
	inst, err := b.Build(m2, uc2, Params{FreqMHz: scfg.FreqMHz, WordBytes: scfg.WordBytes})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, direct, observe(t, inst, scfg.FreqMHz))
}

// TestSingleClockBackendsRejectOtherModes pins the seam's mode
// validation: the baseline and the ring overlay are single-clock, so a
// mesochronous or asynchronous Params must fail the build, not silently
// build a synchronous network.
func TestSingleClockBackendsRejectOtherModes(t *testing.T) {
	for _, name := range []string{"aethereal", "routerless"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, uc, scfg := testWorkload(t, 80)
		if _, err := b.Build(m, uc, Params{FreqMHz: scfg.FreqMHz, Mode: core.Mesochronous}); err == nil {
			t.Errorf("%s accepted a mesochronous build", name)
		}
	}
}

// TestByNameUnknownListsValid pins the usage-diagnostic contract: the
// error carries every registered name so CLIs can surface it verbatim.
func TestByNameUnknownListsValid(t *testing.T) {
	_, err := ByName("warp-drive")
	if err == nil {
		t.Fatal("unknown backend resolved")
	}
	for _, want := range []string{"aelite", "aethereal", "routerless"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
	names := Names()
	if len(names) != 3 || names[0] != "aelite" || names[1] != "aethereal" || names[2] != "routerless" {
		t.Errorf("Names() = %v", names)
	}
}
