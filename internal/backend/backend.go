// Package backend is the seam between network implementations and
// everything that drives them: a Backend builds a runnable network from
// the same spec+mapping inputs, attaches trace emitters to the shared
// event bus, exposes per-backend analytical bounds to the conformance
// auditor where they exist, and reports in the shared core.Report shape.
// The CLIs, the N-backend comparison study and the serve control plane
// all select networks through the registry here, so a new fabric model
// plugs into every experiment by registering one adapter.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/area"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/routerless"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Params carries the construction knobs shared across backends. Zero
// fields take each backend's own defaults (the paper-wide 32-bit words
// at 500 MHz), so a zero Params builds the same network the direct
// constructors build with a zero config — the seam adds no defaults of
// its own.
type Params struct {
	Layout    phit.HeaderLayout
	WordBytes int
	TableSize int
	FreqMHz   float64
	Mode      core.Mode
	PhaseSeed int64
	PPM       float64
	Allocator string

	TrafficBurstFactor float64
	Transactional      bool
	FastReplay         bool
}

// An Instance is one built, runnable network of any backend.
type Instance interface {
	// Backend names the backend that built this instance.
	Backend() string
	// AttachTracer installs the shared event bus; nil detaches.
	AttachTracer(bus *trace.Bus)
	// Audit subscribes the conformance auditor to the instance's
	// analytical contracts and returns it, or nil when the backend has
	// none to check (best-effort service has no bounds — that is the
	// point of the comparison).
	Audit(bus *trace.Bus, rep fault.Reporter, opts audit.Options) *audit.Auditor
	// Run simulates warm-up, clears statistics, measures, and reports.
	Run(warmupNs, measureNs float64) *core.Report
	// AreaUm2 estimates the fabric's silicon cost from the paper's area
	// model, for the comparison tables.
	AreaUm2() float64
}

// A Backend builds network instances from spec+mapping inputs.
type Backend interface {
	// Name is the registry key (also the CLI -backend value).
	Name() string
	// HasBounds reports whether built instances carry analytical
	// latency bounds (and therefore support auditing).
	HasBounds() bool
	// Build assembles a runnable network for the use case on the mesh.
	// The use case must be validated and its IPs mapped.
	Build(m *topology.Mesh, uc *spec.UseCase, p Params) (Instance, error)
}

var (
	regMu    sync.Mutex
	registry = make(map[string]Backend)
)

// Register adds a backend to the registry. Duplicate names panic: two
// backends answering to one -backend value would make runs ambiguous.
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", b.Name()))
	}
	registry[b.Name()] = b
}

// ByName resolves a registered backend. The error lists the valid names
// so a CLI can surface it as a one-line usage diagnostic.
func ByName(name string) (Backend, error) {
	regMu.Lock()
	defer regMu.Unlock()
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("unknown backend %q (valid: %s)", name, namesLocked())
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func namesLocked() string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " | "
		}
		out += n
	}
	return out
}

func init() {
	Register(aeliteBackend{})
	Register(aetherealBackend{})
	Register(routerlessBackend{})
}

// routerArity is the mesh router arity: four mesh ports plus one per NI.
func routerArity(m *topology.Mesh) int { return 4 + m.NIsPerRouter }

// ---- aelite ----

// aeliteBackend wraps the TDM core: PrepareTopology followed by
// core.Build, exactly the sequence the CLI runs, so a seam-built aelite
// network is byte-identical to a directly built one.
type aeliteBackend struct{}

func (aeliteBackend) Name() string    { return "aelite" }
func (aeliteBackend) HasBounds() bool { return true }

func (aeliteBackend) Build(m *topology.Mesh, uc *spec.UseCase, p Params) (Instance, error) {
	cfg := core.Config{
		Layout:             p.Layout,
		WordBytes:          p.WordBytes,
		TableSize:          p.TableSize,
		FreqMHz:            p.FreqMHz,
		Mode:               p.Mode,
		PhaseSeed:          p.PhaseSeed,
		PPM:                p.PPM,
		Allocator:          p.Allocator,
		TrafficBurstFactor: p.TrafficBurstFactor,
		Transactional:      p.Transactional,
		FastReplay:         p.FastReplay,
	}
	core.PrepareTopology(m, cfg)
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		return nil, err
	}
	return &aeliteInstance{n: n}, nil
}

type aeliteInstance struct{ n *core.Network }

func (i *aeliteInstance) Backend() string               { return "aelite" }
func (i *aeliteInstance) Network() *core.Network        { return i.n }
func (i *aeliteInstance) AttachTracer(bus *trace.Bus)   { i.n.AttachTracer(bus) }
func (i *aeliteInstance) Run(w, m float64) *core.Report { return i.n.Run(w, m) }
func (i *aeliteInstance) Audit(bus *trace.Bus, rep fault.Reporter, opts audit.Options) *audit.Auditor {
	return audit.Attach(i.n, bus, rep, opts)
}

func (i *aeliteInstance) AreaUm2() float64 {
	arity := routerArity(i.n.Mesh)
	bits := i.n.Cfg.WordBytes * 8
	per := area.RouterArea(arity, bits, i.n.Cfg.FreqMHz)
	if i.n.Cfg.Mode == core.Mesochronous {
		per = area.MesochronousRouterArea(arity, bits, i.n.Cfg.FreqMHz, true)
	}
	return float64(len(i.n.Mesh.Routers())) * per
}

// ---- aethereal (GS+BE baseline) ----

// aetherealBackend wraps the Æthereal best-effort wormhole network. It
// is globally synchronous and carries no analytical bounds.
type aetherealBackend struct{}

func (aetherealBackend) Name() string    { return "aethereal" }
func (aetherealBackend) HasBounds() bool { return false }

func (aetherealBackend) Build(m *topology.Mesh, uc *spec.UseCase, p Params) (Instance, error) {
	if p.Mode != core.Synchronous {
		return nil, fmt.Errorf("backend aethereal: the Æthereal baseline is globally synchronous (got mode %s)", p.Mode)
	}
	n, err := core.BuildBE(m, uc, core.BEConfig{
		Layout:             p.Layout,
		WordBytes:          p.WordBytes,
		FreqMHz:            p.FreqMHz,
		TrafficBurstFactor: p.TrafficBurstFactor,
		Transactional:      p.Transactional,
	})
	if err != nil {
		return nil, err
	}
	return &aetherealInstance{n: n}, nil
}

type aetherealInstance struct{ n *core.BENetwork }

func (i *aetherealInstance) Backend() string               { return "aethereal" }
func (i *aetherealInstance) Network() *core.BENetwork      { return i.n }
func (i *aetherealInstance) AttachTracer(bus *trace.Bus)   { i.n.AttachTracer(bus) }
func (i *aetherealInstance) Run(w, m float64) *core.Report { return i.n.Run(w, m) }
func (i *aetherealInstance) Audit(*trace.Bus, fault.Reporter, audit.Options) *audit.Auditor {
	return nil // best effort: no contracts to audit
}

func (i *aetherealInstance) AreaUm2() float64 {
	arity := routerArity(i.n.Mesh)
	bits := i.n.Cfg.WordBytes * 8
	return float64(len(i.n.Mesh.Routers())) * area.GSBERouterArea(arity, bits)
}

// ---- routerless ring overlay ----

// routerlessBackend wraps the Indrusiak & Burns-style ring overlay.
type routerlessBackend struct{}

func (routerlessBackend) Name() string    { return "routerless" }
func (routerlessBackend) HasBounds() bool { return true }

func (routerlessBackend) Build(m *topology.Mesh, uc *spec.UseCase, p Params) (Instance, error) {
	if p.Mode != core.Synchronous {
		return nil, fmt.Errorf("backend routerless: the ring overlay is single-clock (got mode %s)", p.Mode)
	}
	n, err := routerless.Build(m, uc, routerless.Config{
		WordBytes:          p.WordBytes,
		FreqMHz:            p.FreqMHz,
		TrafficBurstFactor: p.TrafficBurstFactor,
		Transactional:      p.Transactional,
	})
	if err != nil {
		return nil, err
	}
	return &routerlessInstance{n: n}, nil
}

type routerlessInstance struct{ n *routerless.Network }

func (i *routerlessInstance) Backend() string               { return "routerless" }
func (i *routerlessInstance) Network() *routerless.Network  { return i.n }
func (i *routerlessInstance) AttachTracer(bus *trace.Bus)   { i.n.AttachTracer(bus) }
func (i *routerlessInstance) Run(w, m float64) *core.Report { return i.n.Run(w, m) }
func (i *routerlessInstance) AreaUm2() float64              { return i.n.AreaUm2() }
func (i *routerlessInstance) Audit(bus *trace.Bus, rep fault.Reporter, opts audit.Options) *audit.Auditor {
	return i.n.Audit(bus, rep, opts)
}
