package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// sec7TracedReport builds the Section VII mesochronous network from its
// documented seed, runs it briefly under the metrics sink, and returns the
// rendered report.
func sec7TracedReport(t *testing.T) []byte {
	t.Helper()
	m := experiments.Sec7Mesh()
	cfg := core.Config{Transactional: true, Mode: core.Mesochronous, PhaseSeed: 7}
	core.PrepareTopology(m, cfg)
	uc, err := experiments.Sec7UseCase(m, experiments.Sec7Seed)
	if err != nil {
		t.Fatal(err)
	}
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bus := trace.NewBus()
	mx := trace.NewMetrics(bus)
	n.AttachTracer(bus)
	eng := n.Engine()
	eng.Run(500 * n.BaseClock().Period)
	var b bytes.Buffer
	if err := mx.Report(int64(eng.Now()), int64(n.BaseClock().Period)).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestSec7BuildDeterminism: two same-seed builds of the full Section VII
// workload must behave identically event for event. This guards the whole
// construction chain against map-iteration-order dependence — historically
// both the placement cost sum in spec.MapIPsByTraffic and the worst-path
// pick in core's allocation varied between same-seed builds, which
// silently broke reproducibility of every Section VII figure.
func TestSec7BuildDeterminism(t *testing.T) {
	r1 := sec7TracedReport(t)
	r2 := sec7TracedReport(t)
	if !bytes.Equal(r1, r2) {
		t.Error("same-seed Section VII builds diverge")
	}
}

// TestScanSweepDeterminism: the frequency scan must render byte-identically
// with one worker and with eight. The sweep runner keys results by
// configuration index, each point owns a private engine and there is no
// shared RNG, so worker count and completion order must be unobservable.
func TestScanSweepDeterminism(t *testing.T) {
	freqs := []float64{500, 900, 1000}
	const measureNs = 5000
	p1, c1, err := experiments.FrequencyScan(experiments.Sec7Seed, freqs, measureNs, 1)
	if err != nil {
		t.Fatal(err)
	}
	p8, c8, err := experiments.FrequencyScan(experiments.Sec7Seed, freqs, measureNs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1, r8 := renderScan(p1, c1), renderScan(p8, c8); !bytes.Equal(r1, r8) {
		t.Errorf("-j 1 and -j 8 scan tables diverge:\n%s\nvs\n%s", r1, r8)
	}
}

// faultSweepSummaries runs a four-point fault-campaign sweep (consecutive
// fault seeds on a small mesochronous mesh) at the given worker count and
// returns the concatenated rendered summaries.
func faultSweepSummaries(t *testing.T, jobs int) []byte {
	t.Helper()
	summaries, err := fault.RunSweep(jobs, 4, func(i int) (*fault.Summary, error) {
		m := topology.NewMesh(3, 2, 2)
		uc := spec.Random(spec.RandomConfig{
			Name: "sweep", Seed: 5, IPs: 10, Apps: 2, Conns: 10,
			MinRateMBps: 20, MaxRateMBps: 120,
			MinLatencyNs: 300, MaxLatencyNs: 900,
		})
		spec.MapIPsByTraffic(uc, m)
		col := fault.NewCollector()
		cfg := core.Config{Mode: core.Mesochronous, Probes: true, FaultReporter: col}
		core.PrepareTopology(m, cfg)
		n, err := core.Build(m, uc, cfg)
		if err != nil {
			return nil, err
		}
		plan, err := fault.ParseSpec("random:3", 100+int64(i))
		if err != nil {
			return nil, err
		}
		return fault.Execute(plan, col, n, func() { n.Run(5000, 20000) })
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i, s := range summaries {
		fmt.Fprintf(&buf, "-- point %d --\n", i)
		s.Write(&buf)
	}
	return buf.Bytes()
}

// TestFaultSweepDeterminism: same plans, same seeds, different worker
// counts — the campaign summaries must concatenate byte-identically, in
// point order, never completion order.
func TestFaultSweepDeterminism(t *testing.T) {
	r1 := faultSweepSummaries(t, 1)
	r8 := faultSweepSummaries(t, 8)
	if !bytes.Equal(r1, r8) {
		t.Errorf("-j 1 and -j 8 fault sweeps diverge:\n%s\nvs\n%s", r1, r8)
	}
}

// recoverySummaries renders a three-point bit-flip recovery campaign at
// the given worker count.
func recoverySummaries(t *testing.T, jobs int) []byte {
	t.Helper()
	cfg := experiments.RecoveryConfig{Seed: 77, Points: 3, BitFlip: 0.01, Drop: 0.001, MeasureNs: 20000}
	var buf bytes.Buffer
	if err := experiments.WriteRecovery(&buf, cfg, jobs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRecoverySweepDeterminism: the recovery campaign's summaries — fault
// tallies, retransmission counts and recovery-latency statistics — must
// concatenate byte-identically across same-seed reruns and across worker
// counts. Recovery timing depends on seeded per-link fault processes and
// per-connection timeout bookkeeping, so this pins the whole reliability
// layer's scheduling down to the picosecond.
func TestRecoverySweepDeterminism(t *testing.T) {
	r1 := recoverySummaries(t, 1)
	if rerun := recoverySummaries(t, 1); !bytes.Equal(r1, rerun) {
		t.Errorf("same-seed reruns diverge:\n%s\nvs\n%s", r1, rerun)
	}
	r8 := recoverySummaries(t, 8)
	if !bytes.Equal(r1, r8) {
		t.Errorf("-j 1 and -j 8 recovery sweeps diverge:\n%s\nvs\n%s", r1, r8)
	}
}

// reconfigRender runs the full online-reconfiguration study — paired
// isolation runs with a mid-run close + admission, the typed-rejection
// battery and the quarantine-heal scenario — at the given worker count
// and returns the rendered summary.
func reconfigRender(t *testing.T, jobs int) []byte {
	t.Helper()
	sum, err := experiments.ReconfigStudy(experiments.DefaultReconfigConfig(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Violations != 0 {
		t.Fatalf("reconfig study violated its own gates: %v", sum.Failures)
	}
	return []byte(experiments.RenderReconfig(sum))
}

// TestReconfigStudyDeterminism: mid-run connection closes and admissions
// change the event population, so they are the part of the study most
// likely to leak worker count or map order into results. The rendered
// summary — survivor word counts, rejection details, heal latencies —
// must be byte-identical across same-config reruns and across -j 1 / -j 8.
func TestReconfigStudyDeterminism(t *testing.T) {
	r1 := reconfigRender(t, 1)
	if rerun := reconfigRender(t, 1); !bytes.Equal(r1, rerun) {
		t.Errorf("same-config reruns diverge:\n%s\nvs\n%s", r1, rerun)
	}
	r8 := reconfigRender(t, 8)
	if !bytes.Equal(r1, r8) {
		t.Errorf("-j 1 and -j 8 reconfig studies diverge:\n%s\nvs\n%s", r1, r8)
	}
}
