package repro

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/trace"
)

// sec7TracedReport builds the Section VII mesochronous network from its
// documented seed, runs it briefly under the metrics sink, and returns the
// rendered report.
func sec7TracedReport(t *testing.T) []byte {
	t.Helper()
	m := experiments.Sec7Mesh()
	cfg := core.Config{Transactional: true, Mode: core.Mesochronous, PhaseSeed: 7}
	core.PrepareTopology(m, cfg)
	uc, err := experiments.Sec7UseCase(m, experiments.Sec7Seed)
	if err != nil {
		t.Fatal(err)
	}
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bus := trace.NewBus()
	mx := trace.NewMetrics(bus)
	n.AttachTracer(bus)
	eng := n.Engine()
	eng.Run(500 * n.BaseClock().Period)
	var b bytes.Buffer
	if err := mx.Report(int64(eng.Now()), int64(n.BaseClock().Period)).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestSec7BuildDeterminism: two same-seed builds of the full Section VII
// workload must behave identically event for event. This guards the whole
// construction chain against map-iteration-order dependence — historically
// both the placement cost sum in spec.MapIPsByTraffic and the worst-path
// pick in core's allocation varied between same-seed builds, which
// silently broke reproducibility of every Section VII figure.
func TestSec7BuildDeterminism(t *testing.T) {
	r1 := sec7TracedReport(t)
	r2 := sec7TracedReport(t)
	if !bytes.Equal(r1, r2) {
		t.Error("same-seed Section VII builds diverge")
	}
}
