// Reliability: surviving noisy links without touching the network core.
//
// The paper's service guarantees assume links never corrupt data. This
// example turns that assumption off — every link flips payload bits and
// erases whole flits at a seeded rate — and shows the end-to-end
// reliability shell (core.Config{Reliable: true}) healing the damage
// from inside the NIs: CRC-protected flits, cumulative acks on the
// paired reverse connection, go-back-N retransmission in the
// connection's own reserved TDM slots.
//
// Two campaigns run:
//
//  1. A soft-fault campaign (1% of phits corrupted, 0.1% of flits
//     dropped, on every link). Every connection still delivers 100% of
//     its payload; the cost is retransmissions and a measurable
//     head-of-line recovery latency, never another connection's
//     bandwidth.
//
//  2. A hard fault: one NI's output link drops everything. The
//     connections crossing it exhaust a small retry budget — timeout
//     doubling per silent round — and are quarantined, each reported as
//     one graceful link-quarantined violation, while every connection
//     avoiding the link keeps full service. Composability holds under
//     faults, not just under contention.
//
// Run with:
//
//	go run ./examples/reliability
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

var (
	auditOn = flag.Bool("audit", false, "check every flit against the analytical guarantee contracts")
	strict  = flag.Bool("strict", false, "with -audit: fail fast on the first violation")
)

// build assembles a mesochronous 3x2 mesh with the reliability shell on
// every connection and a collecting (graceful) violation reporter.
func build(col *fault.Collector, retryBudget int) *core.Network {
	m := topology.NewMesh(3, 2, 2)
	uc := spec.Random(spec.RandomConfig{
		Name: "reliability", Seed: 5, IPs: 10, Apps: 2, Conns: 10,
		MinRateMBps: 20, MaxRateMBps: 120,
		MinLatencyNs: 300, MaxLatencyNs: 900,
	})
	spec.MapIPsByTraffic(uc, m)
	cfg := core.Config{
		Mode: core.Mesochronous, Probes: true, Reliable: true,
		RetryBudget: retryBudget, FaultReporter: col,
	}
	core.PrepareTopology(m, cfg)
	net, err := core.Build(m, uc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return net
}

// campaign arms the given rate rules, runs for measureNs, and prints one
// line per connection: payload accounting and recovery work. With -audit,
// the conformance auditor rides along on its own collector — the expected
// campaign violations (link-quarantined) stay in col, while a breach of a
// *guarantee* (bound past the recovery allowance, slot misuse, reordering)
// fails the example.
func campaign(col *fault.Collector, net *core.Network, rules []fault.RateRule, measureNs float64) {
	var auditor *audit.Auditor
	var auditCol *fault.Collector
	if *auditOn {
		bus := trace.NewBus()
		var rep fault.Reporter
		if !*strict {
			auditCol = fault.NewCollector()
			rep = auditCol
		}
		auditor = audit.Attach(net, bus, rep, audit.Options{})
		net.AttachTracer(bus)
	}
	plan := &fault.Plan{Seed: 42, Rates: rules}
	c := fault.NewCampaign(plan, col)
	if err := c.Arm(net.Engine(), net.FaultTargets()); err != nil {
		log.Fatal(err)
	}
	rep := net.Run(0, measureNs)
	if auditor != nil && auditor.Violations() > 0 {
		for _, v := range auditCol.Violations() {
			fmt.Fprintln(os.Stderr, "audit:", v)
		}
		log.Fatalf("audit: %d guarantee violations under faults", auditor.Violations())
	}
	var flips, drops int64
	for _, o := range c.Summarize().RateLinks {
		flips += o.BitsFlipped
		drops += o.FlitsDropped
	}
	fmt.Printf("injected: %d bit flips, %d flit drops; violations: %d\n",
		flips, drops, col.Total())
	fmt.Printf("%6s %9s %6s %7s %5s  %s\n",
		"conn", "delivered", "crc", "rexmit", "quar", "payload")
	for _, cr := range rep.Conns {
		tx, _ := net.ReliableTxStats(cr.Conn)
		rx, _ := net.ReliableRxStats(cr.Conn)
		state := "complete"
		if tx.Quarantined {
			state = "quarantined"
		}
		fmt.Printf("%6d %9d %6d %7d %5v  %s\n",
			cr.Conn, cr.Delivered, rx.CRCDrops, tx.Retransmits, tx.Quarantined, state)
	}
}

func main() {
	flag.Parse()
	fmt.Println("soft faults: every link flips 1% of phits and drops 0.1% of flits")
	col := fault.NewCollector()
	campaign(col, build(col, 0), []fault.RateRule{{BitFlip: 0.01, Drop: 0.001}}, 30000)
	fmt.Println("\nevery corrupted flit failed the CRC at the destination NI and was")
	fmt.Println("retransmitted in the sender's own reserved slots — no connection")
	fmt.Println("lost payload, and no connection paid for another's faults")

	fmt.Println("\nhard fault: one NI's output link drops every flit (retry budget 2)")
	col = fault.NewCollector()
	net := build(col, 2)
	campaign(col, net, []fault.RateRule{{Target: ".NI0.0.0>", Drop: 1}}, 40000)
	kinds := col.CountByKind()
	fmt.Printf("\n%d connections quarantined (one link-quarantined violation each);\n",
		kinds[fault.LinkQuarantined])
	fmt.Println("their slots fall idle, every other connection keeps full service")
}
