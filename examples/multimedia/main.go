// Multimedia: a hand-written set-top-box-style SoC — the kind of system
// the Æthereal/aelite line was designed for (the paper's introduction
// motivates exactly this integration problem).
//
// Four independent applications share one aelite NoC:
//
//	video   — decoder pipeline streaming from memory through processing
//	          stages to a display controller (heavy, deadline-critical);
//	audio   — decode and output (light, tight jitter);
//	record  — encoder writing back to memory;
//	control — a host CPU touching everything (sparse, latency-sensitive).
//
// Each application is allocated, verified and guaranteed in isolation;
// running them together changes nothing — that is what composability buys
// the system integrator.
//
// Run with:
//
//	go run ./examples/multimedia
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
)

func main() {
	mesh := topology.NewMesh(3, 2, 2) // 6 routers, 12 NIs

	ip := func(id int, name string) spec.IP {
		return spec.IP{ID: spec.IPID(id), Name: name, NI: topology.Invalid}
	}
	uc := &spec.UseCase{
		Name: "set-top-box",
		Apps: 4,
		IPs: []spec.IP{
			ip(0, "cpu"), ip(1, "ddr"), ip(2, "vdec"), ip(3, "vproc"),
			ip(4, "display"), ip(5, "adec"), ip(6, "aout"), ip(7, "venc"),
			ip(8, "tuner"), ip(9, "dma"),
		},
	}
	conn := func(id int, app int, src, dst int, mbps, latNs float64) {
		uc.Connections = append(uc.Connections, spec.Connection{
			ID: phit.ConnID(id), App: spec.AppID(app), Src: spec.IPID(src), Dst: spec.IPID(dst),
			BandwidthMBps: mbps, MaxLatencyNs: latNs,
		})
	}
	// App 0: video pipeline (heavy streams, display has a hard deadline).
	conn(1, 0, 1, 2, 180, 400) // ddr -> vdec: compressed stream
	conn(2, 0, 2, 3, 240, 400) // vdec -> vproc: decoded frames
	conn(3, 0, 3, 4, 260, 300) // vproc -> display: scan-out
	conn(4, 0, 2, 1, 120, 500) // vdec -> ddr: reference frames
	// App 1: audio (light but jitter-sensitive).
	conn(5, 1, 1, 5, 24, 350) // ddr -> adec
	conn(6, 1, 5, 6, 16, 300) // adec -> aout
	// App 2: record path.
	conn(7, 2, 8, 7, 140, 600) // tuner -> venc
	conn(8, 2, 7, 1, 90, 600)  // venc -> ddr
	// App 3: control.
	conn(9, 3, 0, 1, 30, 250)  // cpu -> ddr
	conn(10, 3, 1, 0, 30, 250) // ddr -> cpu
	conn(11, 3, 0, 9, 12, 400) // cpu -> dma descriptors

	if err := uc.Validate(); err != nil {
		log.Fatal(err)
	}
	spec.MapIPsByTraffic(uc, mesh)

	cfg := core.Config{FreqMHz: 500, Mode: core.Mesochronous, Probes: true, Transactional: true}
	core.PrepareTopology(mesh, cfg)
	net, err := core.Build(mesh, uc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("set-top-box SoC: %d IPs, %d connections, 4 applications\n", len(uc.IPs), len(uc.Connections))
	fmt.Printf("mesochronous aelite at 500 MHz, slot table %d\n\n", net.Cfg.TableSize)
	fmt.Println("per-application guarantees (from allocation, before any simulation):")
	names := []string{"video", "audio", "record", "control"}
	for a := 0; a < 4; a++ {
		fmt.Printf("  %s:\n", names[a])
		for _, c := range uc.ConnectionsOfApp(spec.AppID(a)) {
			info, err := net.Info(c.ID)
			if err != nil {
				log.Fatal(err)
			}
			srcIP, _ := uc.IP(c.Src)
			dstIP, _ := uc.IP(c.Dst)
			fmt.Printf("    %-8s > %-8s %6.0f MB/s guaranteed (%4.0f needed), bound %5.0f ns (%4.0f allowed)\n",
				srcIP.Name, dstIP.Name, info.GuaranteedMBps, c.BandwidthMBps, info.BoundNs, c.MaxLatencyNs)
		}
	}

	rep := net.Run(10000, 80000)
	fmt.Println("\nsimulated 80 µs with transactional (bursty) traffic:")
	rep.Write(os.Stdout)
	if !rep.AllMet() || !rep.AllWithinBound() {
		fmt.Println("VIOLATIONS — guarantees must hold")
		os.Exit(1)
	}
	fmt.Println("\nevery application meets its contract; each could have been signed off in isolation")

	// Use-case transition (the reconfiguration capability of reference
	// [16]): the user stops recording and starts a game. The record
	// application's connections are closed — drained, then their slots
	// released — and the game's connection is admitted into the freed
	// capacity, all while video, audio and control keep running with
	// their timing untouched.
	fmt.Println("\n== use-case transition: stop recording, start a game ==")
	for _, c := range uc.ConnectionsOfApp(2) {
		if err := net.CloseConnection(c.ID); err != nil {
			log.Fatal(err)
		}
	}
	game := spec.Connection{
		ID: 100, App: 2, Src: 1, Dst: 9, // ddr -> dma (texture streaming)
		BandwidthMBps: 200, MaxLatencyNs: 500,
	}
	if err := net.OpenConnection(game); err != nil {
		log.Fatal(err)
	}
	net.Engine().Run(net.Engine().Now() + 60000*1000) // 60 µs more
	info, err := net.Info(game.ID)
	if err != nil {
		log.Fatal(err)
	}
	st := net.NIOf(mustIP(uc, game.Dst).NI).InStats(game.ID)
	fmt.Printf("game stream admitted: %d slots, %.0f MB/s guaranteed, delivered %d words, max latency %.0f ns (bound %.0f)\n",
		len(info.Slots), info.GuaranteedMBps, st.Delivered, st.Latency.Max(), info.BoundNs)
	fmt.Println("video/audio/control never noticed — slot ownership is the only shared state")
}

func mustIP(uc *spec.UseCase, id spec.IPID) spec.IP {
	ip, err := uc.IP(id)
	if err != nil {
		log.Fatal(err)
	}
	return ip
}
