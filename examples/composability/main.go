// Composability: the paper's central property, demonstrated word by word.
//
// An application's temporal behaviour on aelite is *bit-identical*
// whether it runs alone or next to other applications — even when those
// applications oversubscribe their allocation by 8x and are throttled by
// back-pressure. The same experiment on the Æthereal best-effort baseline
// shows the timing shifting the moment another application appears.
//
// Run with:
//
//	go run ./examples/composability
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

var (
	auditOn = flag.Bool("audit", false, "check every aelite flit against the analytical guarantee contracts")
	strict  = flag.Bool("strict", false, "with -audit: fail fast on the first violation")
)

func buildSpec() (*topology.Mesh, *spec.UseCase) {
	m := topology.NewMesh(3, 2, 2)
	uc := spec.Random(spec.RandomConfig{
		Name: "composability", Seed: 42, IPs: 12, Apps: 2, Conns: 10,
		MinRateMBps: 20, MaxRateMBps: 150,
		MinLatencyNs: 250, MaxLatencyNs: 900,
	})
	spec.MapIPsByTraffic(uc, m)
	return m, uc
}

// aeliteArrivals runs the aelite network and returns app 0's exact
// arrival instants, with the other application enabled or not (and
// optionally hostile: oversubscribing 8x).
func aeliteArrivals(withOthers, hostile bool) map[phit.ConnID][]clock.Time {
	m, uc := buildSpec()
	cfg := core.Config{Probes: true}
	core.PrepareTopology(m, cfg)
	net, err := core.Build(m, uc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var auditor *audit.Auditor
	var auditCol *fault.Collector
	if *auditOn {
		bus := trace.NewBus()
		var rep fault.Reporter
		if !*strict {
			auditCol = fault.NewCollector()
			rep = auditCol
		}
		// The hostile phase *deliberately* oversubscribes application 1:
		// tolerate the breach of contract, but keep every other check —
		// slot ownership, exclusivity, app 0's bounds — armed.
		auditor = audit.Attach(net, bus, rep, audit.Options{TolerateOversubscription: hostile})
		net.AttachTracer(bus)
	}
	for _, c := range uc.Connections {
		if c.App != 0 {
			if !withOthers {
				net.Generator(c.ID).SetEnabled(false)
			} else if hostile {
				net.Generator(c.ID).SetRateMBps(c.BandwidthMBps*8, 4)
			}
		} else {
			ip, _ := uc.IP(c.Dst)
			net.NIOf(ip.NI).RecordArrivals(c.ID, true)
		}
	}
	net.Run(0, 40000)
	if auditor != nil && auditor.Violations() > 0 {
		for _, v := range auditCol.Violations() {
			fmt.Fprintln(os.Stderr, "audit:", v)
		}
		log.Fatalf("audit: %d guarantee violations (withOthers=%v hostile=%v)",
			auditor.Violations(), withOthers, hostile)
	}
	out := map[phit.ConnID][]clock.Time{}
	for _, c := range uc.Connections {
		if c.App == 0 {
			ip, _ := uc.IP(c.Dst)
			out[c.ID] = net.NIOf(ip.NI).Arrivals(c.ID)
		}
	}
	return out
}

// beArrivals is the same experiment on the best-effort baseline.
func beArrivals(withOthers bool) map[phit.ConnID][]clock.Time {
	m, uc := buildSpec()
	net, err := core.BuildBE(m, uc, core.BEConfig{})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range uc.Connections {
		if c.App != 0 && !withOthers {
			net.Generator(c.ID).SetEnabled(false)
		}
		if c.App == 0 {
			ip, _ := uc.IP(c.Dst)
			net.NIOf(ip.NI).RecordArrivals(c.ID, true)
		}
	}
	net.Run(0, 40000)
	out := map[phit.ConnID][]clock.Time{}
	for _, c := range uc.Connections {
		if c.App == 0 {
			ip, _ := uc.IP(c.Dst)
			out[c.ID] = net.NIOf(ip.NI).Arrivals(c.ID)
		}
	}
	return out
}

func compare(alone, shared map[phit.ConnID][]clock.Time) (words int, identical bool, firstDiff string) {
	identical = true
	for conn, a := range alone {
		b := shared[conn]
		if len(a) != len(b) {
			identical = false
			firstDiff = fmt.Sprintf("connection %d delivered %d vs %d words", conn, len(a), len(b))
			continue
		}
		words += len(a)
		for i := range a {
			if a[i] != b[i] {
				if identical {
					firstDiff = fmt.Sprintf("connection %d word %d: %d ps vs %d ps (Δ %d ps)",
						conn, i, a[i], b[i], b[i]-a[i])
				}
				identical = false
				break
			}
		}
	}
	return
}

func main() {
	flag.Parse()
	fmt.Println("== aelite: application 0 alone vs alongside application 1 ==")
	alone := aeliteArrivals(false, false)
	shared := aeliteArrivals(true, false)
	words, same, diff := compare(alone, shared)
	fmt.Printf("compared %d delivered words: identical timing = %v\n", words, same)
	if !same {
		log.Fatalf("aelite interference detected: %s", diff)
	}

	fmt.Println("\n== aelite: application 1 oversubscribes its allocation 8x ==")
	hostile := aeliteArrivals(true, true)
	words, same, diff = compare(alone, hostile)
	fmt.Printf("compared %d delivered words: identical timing = %v\n", words, same)
	if !same {
		log.Fatalf("aelite interference under hostile load: %s", diff)
	}
	fmt.Println("the hostile application only slowed itself down (back-pressure);")
	fmt.Println("application 0 did not move by a single picosecond")

	fmt.Println("\n== Æthereal best effort: the same experiment ==")
	beAlone := beArrivals(false)
	beShared := beArrivals(true)
	words, same, diff = compare(beAlone, beShared)
	fmt.Printf("compared %d delivered words: identical timing = %v\n", words, same)
	if same {
		fmt.Println("(surprising — BE interference usually shows immediately)")
	} else {
		fmt.Printf("first difference: %s\n", diff)
		fmt.Println("composability is lost: application 0's timing depends on application 1")
	}
}
