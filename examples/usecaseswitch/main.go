// Use-case switching: the paper's set-top-box scenario taken through
// online reconfiguration — the run-time half of the contract the design
// flow establishes offline (reference [16]'s "undisrupted
// quality-of-service during reconfiguration").
//
// Three acts, one live network, no rebuilds:
//
//  1. Admission control — "can this connection be opened now?" answered
//     with typed, machine-readable decisions: an admissible request gets
//     its full guarantees, an inadmissible one a reason (bound-infeasible,
//     no-slots, ...) and the network is left untouched.
//  2. Use-case transition — the user stops recording and starts a game:
//     the record application's connections drain and release their slots,
//     the game's stream is admitted into the freed capacity, and the
//     running applications never notice.
//  3. Self-healing — a router-to-router link on the game's path starts
//     dropping every flit; the reliability shell quarantines the stream,
//     and the healer reroutes it over links clear of the fault, measuring
//     the service interruption.
//
// Run with:
//
//	go run ./examples/usecaseswitch
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	mesh := topology.NewMesh(3, 2, 2) // 6 routers, 12 NIs

	ip := func(id int, name string) spec.IP {
		return spec.IP{ID: spec.IPID(id), Name: name, NI: topology.Invalid}
	}
	uc := &spec.UseCase{
		Name: "set-top-box",
		Apps: 4,
		IPs: []spec.IP{
			ip(0, "cpu"), ip(1, "ddr"), ip(2, "vdec"), ip(3, "vproc"),
			ip(4, "display"), ip(5, "adec"), ip(6, "aout"), ip(7, "venc"),
			ip(8, "tuner"), ip(9, "dma"),
		},
	}
	conn := func(id int, app int, src, dst int, mbps, latNs float64) {
		uc.Connections = append(uc.Connections, spec.Connection{
			ID: phit.ConnID(id), App: spec.AppID(app), Src: spec.IPID(src), Dst: spec.IPID(dst),
			BandwidthMBps: mbps, MaxLatencyNs: latNs,
		})
	}
	// App 0: video pipeline. App 1: audio. App 2: record. App 3: control.
	// Lighter than the multimedia example: the reliability shell spends
	// part of each flit on CRC words, and act 3 needs spare slots to
	// reroute into.
	conn(1, 0, 1, 2, 90, 500) // ddr -> vdec
	conn(2, 0, 2, 3, 120, 500) // vdec -> vproc
	conn(3, 0, 3, 4, 130, 400) // vproc -> display
	conn(4, 1, 1, 5, 24, 500)  // ddr -> adec
	conn(5, 1, 5, 6, 16, 500)  // adec -> aout
	conn(6, 2, 8, 7, 70, 800)  // tuner -> venc
	conn(7, 2, 7, 1, 45, 800)  // venc -> ddr
	conn(8, 3, 0, 1, 15, 400)  // cpu -> ddr
	conn(9, 3, 1, 0, 15, 400)  // ddr -> cpu

	if err := uc.Validate(); err != nil {
		log.Fatal(err)
	}
	spec.MapIPsByTraffic(uc, mesh)

	// Reliable build with a tight retry budget: act 3 needs a hard fault
	// to quarantine quickly. The collector keeps expected campaign
	// violations from killing the run.
	col := fault.NewCollector()
	cfg := core.Config{FreqMHz: 500, Mode: core.Mesochronous, Probes: true,
		Reliable: true, RetryBudget: 2, FaultReporter: col}
	core.PrepareTopology(mesh, cfg)
	net, err := core.Build(mesh, uc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bus := trace.NewBus()
	mx := trace.NewMetrics(bus)
	net.AttachTracer(bus)
	healer := admission.NewHealer(net, bus)

	fmt.Printf("set-top-box SoC: %d IPs, %d connections, reliable mesochronous aelite at 500 MHz, table %d\n",
		len(uc.IPs), len(uc.Connections), net.Cfg.TableSize)

	// -- Act 1: admission control ------------------------------------
	fmt.Println("\n== act 1: admission control (nothing is changed by asking) ==")
	show := func(label string, d admission.Decision) {
		if d.Admissible {
			fmt.Printf("  %-34s ADMISSIBLE: %.0f MB/s guaranteed, bound %.0f ns, %d+%d slots\n",
				label, d.GuaranteeMBps, d.LatencyBoundNs, d.DataSlots, d.RevSlots)
			return
		}
		fmt.Printf("  %-34s rejected: %s\n", label, d.Reason)
	}
	game := spec.Connection{ID: net.FreshConnID(), App: 2, Src: 1, Dst: 9, // ddr -> dma textures
		BandwidthMBps: 90, MaxLatencyNs: 900}
	show("game stream 90 MB/s", admission.Probe(net, game, admission.Options{}))
	greedy := game
	greedy.BandwidthMBps = 1200
	show("game stream 1200 MB/s", admission.Probe(net, greedy, admission.Options{}))
	impatient := game
	impatient.MaxLatencyNs = 20
	show("game stream, 20 ns budget", admission.Probe(net, impatient, admission.Options{}))

	// -- Act 2: use-case transition ----------------------------------
	fmt.Println("\n== act 2: stop recording, start the game ==")
	rep, err := net.RunTimed(10000, 60000, []core.TimedAction{
		{AtNs: 20000, Do: func(n *core.Network) error {
			for _, c := range uc.ConnectionsOfApp(2) {
				if err := n.CloseConnection(c.ID); err != nil {
					return err
				}
				fmt.Printf("  closed %s (connection %d): drained, slots released\n", "record", c.ID)
			}
			game.ID = n.FreshConnID()
			d, err := admission.Admit(n, game, admission.Options{})
			if err != nil {
				return err
			}
			show("game stream admitted mid-run", d)
			return nil
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !rep.AllMet() {
		fmt.Println("VIOLATIONS — survivors must keep their guarantees")
		rep.Write(os.Stdout)
		os.Exit(1)
	}
	fmt.Println("  video, audio and control met every guarantee across the switch")

	// -- Act 3: self-healing reroute ---------------------------------
	fmt.Println("\n== act 3: a link on the game's path fails hard ==")
	links, err := net.ConnectionLinks(game.ID)
	if err != nil {
		log.Fatal(err)
	}
	var faulty topology.LinkID
	faultyName := ""
	for _, l := range links {
		lk := net.Mesh.Link(l)
		if net.Mesh.Node(lk.From).Kind == topology.Router && net.Mesh.Node(lk.To).Kind == topology.Router {
			faulty = l
			faultyName = fmt.Sprintf("%s>%s", net.Mesh.Node(lk.From).Name, net.Mesh.Node(lk.To).Name)
			break
		}
	}
	if faultyName == "" {
		log.Fatal("game stream crosses no router-to-router link; nothing to heal around")
	}
	plan := &fault.Plan{Seed: 1, Rates: []fault.RateRule{
		{Target: fmt.Sprintf("l%d.", faulty), Drop: 1},
	}}
	campaign := fault.NewCampaign(plan, col)
	if err := campaign.Arm(net.Engine(), net.FaultTargets()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s now drops every flit\n", faultyName)

	// Drive the healer between engine segments until the reroute lands.
	if _, err := net.RunTimed(0, 40000, []core.TimedAction{
		{AtNs: 10000, Do: heal(healer)},
		{AtNs: 20000, Do: heal(healer)},
		{AtNs: 30000, Do: heal(healer)},
	}); err != nil {
		log.Fatal(err)
	}
	reroutes := 0
	for _, h := range healer.Reports() {
		if !h.Rerouted {
			fmt.Printf("  connection %d degraded gracefully: %s\n", h.Victim, h.Decision.Reason)
			continue
		}
		reroutes++
		cm := mx.Conn(h.Origin)
		fmt.Printf("  connection %d quarantined, rerouted as %d clear of %s: recovery %.1f ns (metrics: %d reroutes)\n",
			h.Victim, h.Replacement, faultyName, h.RecoveryNs, cm.Reroutes)
	}
	if reroutes == 0 {
		log.Fatal("the hard fault triggered no reroute")
	}
	fmt.Println("\nadmission asked, transition switched, fault healed: every connection crossing the" +
		"\ndead link was rerouted (or degraded gracefully, alone) — everyone else never noticed")
}

// heal adapts the healer to a RunTimed action.
func heal(h *admission.Healer) func(*core.Network) error {
	return func(*core.Network) error {
		_, err := h.Heal()
		return err
	}
}
