// Fault campaign: probing the edges of aelite's operating envelope.
//
// The paper's guarantees hold under explicit physical assumptions: writer/
// reader skew of at most half a clock cycle on mesochronous links (Section
// V), a 1-2 cycle bi-synchronous FIFO forwarding delay, whole flits in
// every used slot, and continuously firing wrappers kept live by empty
// tokens (Section VI). This example leaves the envelope on purpose, in two
// ways, and watches the violation observers catch it:
//
//  1. A skew sweep across the half-period boundary. In envelope
//     (skew <= period/2) every run is clean; one picosecond past it,
//     every inter-router stage reports a skew-bound violation at build
//     time and the misaligned links shed fifo-underflow, protocol and
//     slot-ownership violations at run time — while the simulation keeps
//     going, because the collector replaces the fail-fast panics.
//
//  2. A deterministic injected-fault campaign (drops, header corruption,
//     duplication, a stretched synchroniser, a wrapper stall) with per-
//     fault detection latency. The same seed always reproduces the same
//     campaign, byte for byte.
//
// Run with:
//
//	go run ./examples/faultcampaign
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/spec"
	"repro/internal/topology"
)

func buildSpec() *spec.UseCase {
	return spec.Random(spec.RandomConfig{
		Name: "faults", Seed: 5, IPs: 10, Apps: 2, Conns: 10,
		MinRateMBps: 20, MaxRateMBps: 120,
		MinLatencyNs: 300, MaxLatencyNs: 900,
	})
}

// build assembles a mesochronous network with the given skew override and
// reporter, with TDM ownership probes on every link.
func build(skewPS int64, rep fault.Reporter) *core.Network {
	m := topology.NewMesh(3, 2, 2)
	uc := buildSpec()
	spec.MapIPsByTraffic(uc, m)
	cfg := core.Config{
		Mode: core.Mesochronous, Probes: true,
		FaultReporter: rep, SkewOverridePS: skewPS,
	}
	core.PrepareTopology(m, cfg)
	net, err := core.Build(m, uc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return net
}

func main() {
	// Part 1: skew sweep across the half-period boundary (period is
	// 2000 ps at the default 500 MHz, so the envelope edge is 1000 ps —
	// inclusive: exactly half a period is still legal).
	period := clock.PeriodFromMHz(500)
	half := int64(period / 2)
	fmt.Printf("skew sweep across the half-period envelope edge (%d ps):\n", half)
	fmt.Printf("%9s %10s %12s %12s %8s\n", "skew(ps)", "envelope", "violations", "kinds", "met")
	// The sweep points are independent simulations — each worker builds
	// its own network and engine — so they fan across all CPUs, and the
	// index-keyed results print in skew order whatever finished first.
	skews := []int64{half - 200, half, half + 1, half + 200, half + 600}
	type skewRow struct {
		violations int64
		kinds      int
		met        bool
	}
	rows, err := parallel.Map(parallel.Jobs(0), len(skews), func(i int) (skewRow, error) {
		col := fault.NewCollector()
		net := build(skews[i], col)
		net.AddInvariantCheckers(col)
		rep := net.Run(5000, 30000)
		return skewRow{violations: col.Total(), kinds: len(col.Kinds()), met: rep.AllMet()}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rows {
		skew := skews[i]
		inEnv := "inside"
		if skew > half {
			inEnv = "OUTSIDE"
		}
		fmt.Printf("%9d %10s %12d %12d %8v\n", skew, inEnv, r.violations, r.kinds, r.met)
		if skew <= half && r.violations != 0 {
			log.Fatal("violations reported inside the envelope — the bound must be inclusive")
		}
		if skew > half && r.violations == 0 {
			log.Fatal("no violations past the envelope — the observers missed a misaligned link")
		}
	}
	fmt.Println("the bound is inclusive: skew == period/2 is the largest legal value,")
	fmt.Println("and the first picosecond beyond it is detected, not silently absorbed")

	// Part 2: a deterministic injected-fault campaign.
	fmt.Println("\ninjected-fault campaign (same seed => byte-identical summary):")
	plan, err := fault.ParseSpec(
		"drop@9000:l0.:2;corrupt@12000:l3.;dup@15000:l5.;delay@18000:l1.R1.0:2500;random:3",
		1234)
	if err != nil {
		log.Fatal(err)
	}
	col := fault.NewCollector()
	net := build(0, col)
	summary, err := fault.Execute(plan, col, net, func() { net.Run(5000, 30000) })
	if err != nil {
		log.Fatal(err)
	}
	summary.Write(os.Stdout)

	fmt.Println("\nevery fault is injected at an exact picosecond and every violation is")
	fmt.Println("a structured record — campaigns are reproducible, diffable experiments")
}
