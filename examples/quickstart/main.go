// Quickstart: the paper's Figure 1 scenario, end to end.
//
// Two IP cores communicate over a small aelite NoC using two
// guaranteed-service connections: cA owns two TDM slots, cB owns one.
// The slot tables enforce contention-free routing — no two flits ever
// reach the same link in the same slot, so the routers need no arbiters —
// and every connection's latency and throughput follow analytically from
// its reservation.
//
// Run with:
//
//	go run ./examples/quickstart
//
// Pass -trace-out trace.json to additionally record every flit lifecycle
// event as Chrome trace-event JSON; load the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing to see each connection's
// flits hop through the NIs and routers slot by slot.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/phit"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of every flit lifecycle event")
	auditOn := flag.Bool("audit", false, "check every flit against the analytical guarantee contracts")
	strict := flag.Bool("strict", false, "with -audit: fail fast on the first violation")
	flag.Parse()

	// A 2x1 mesh: two routers, one NI each — the shape of Fig. 1.
	mesh := topology.NewMesh(2, 1, 1)

	// Two IPs on opposite sides, two connections between them.
	uc := &spec.UseCase{
		Name: "fig1",
		Apps: 2,
		IPs: []spec.IP{
			{ID: 0, Name: "IPA", NI: mesh.NIAt(0, 0, 0)},
			{ID: 1, Name: "IPB", NI: mesh.NIAt(1, 0, 0)},
		},
		Connections: []spec.Connection{
			// cA: the heavier stream (think video samples).
			{ID: 1, App: 0, Src: 0, Dst: 1, BandwidthMBps: 120, MaxLatencyNs: 300},
			// cB: a lighter reverse stream.
			{ID: 2, App: 1, Src: 1, Dst: 0, BandwidthMBps: 60, MaxLatencyNs: 400},
		},
	}
	if err := uc.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{FreqMHz: 500, Probes: true} // probes verify the TDM schedule live
	core.PrepareTopology(mesh, cfg)
	net, err := core.Build(mesh, uc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Contention-free routing (paper Fig. 1): per-NI TDM slot tables")
	fmt.Printf("(table size %d; a reservation shifts one slot per hop)\n\n", net.Cfg.TableSize)
	for _, id := range mesh.AllNIs() {
		t := net.Alloc.NITable(id)
		fmt.Printf("  %-8s slots %v\n", mesh.Node(id).Name, t.Slots)
	}

	fmt.Println("\nAnalytical guarantees from the allocation:")
	for _, c := range uc.Connections {
		info, err := net.Info(c.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  connection %d: %d slots -> %.1f MB/s guaranteed (%.1f required), latency bound %.1f ns (%.1f allowed)\n",
			c.ID, len(info.Slots), info.GuaranteedMBps, c.BandwidthMBps, info.BoundNs, c.MaxLatencyNs)
	}

	var chrome *trace.Chrome
	var auditor *audit.Auditor
	var auditCol *fault.Collector
	if *traceOut != "" || *auditOn {
		bus := trace.NewBus()
		if *traceOut != "" {
			chrome = trace.NewChrome(bus)
			chrome.SetFlitCycle(phit.FlitWords * int64(net.BaseClock().Period))
		}
		if *auditOn {
			var rep fault.Reporter
			if !*strict {
				auditCol = fault.NewCollector()
				rep = auditCol
			}
			auditor = audit.Attach(net, bus, rep, audit.Options{})
		}
		net.AttachTracer(bus)
	}

	// Simulate 100 µs at 500 MHz and compare measurement to guarantee.
	rep := net.Run(5000, 100000)
	fmt.Println("\nSimulation (cycle-accurate, 100 µs):")
	rep.Write(os.Stdout)
	if chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := chrome.WriteTo(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d trace events to %s (open in https://ui.perfetto.dev)\n", chrome.Len(), *traceOut)
	}
	if auditor != nil {
		fmt.Println()
		auditor.WriteSummary(os.Stdout)
		if auditor.Violations() > 0 {
			for _, v := range auditCol.Violations() {
				fmt.Fprintln(os.Stderr, "audit:", v)
			}
			os.Exit(1)
		}
	}
	if rep.AllMet() && rep.AllWithinBound() {
		fmt.Println("\nevery requirement met and every measured latency within its bound")
	} else {
		fmt.Println("\nVIOLATIONS — this should never happen")
		os.Exit(1)
	}
}
