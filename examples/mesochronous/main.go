// Mesochronous: physical scalability without global synchronicity.
//
// Every router tile gets an arbitrary clock phase (within the paper's
// half-cycle skew bound) and inter-router links carry mesochronous link
// pipeline stages — a 4-word bi-synchronous FIFO plus an alignment FSM
// that re-times flits to the reader's flit cycle. This example sweeps the
// phase assignment and shows that the guarantees are phase-independent:
// the same allocation meets the same requirements for every assignment,
// the link FIFOs never exceed their 4-word depth, and the asynchronous
// (plesiochronous, Section VI) configuration works too.
//
// Run with:
//
//	go run ./examples/mesochronous
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/topology"
)

func buildSpec() *spec.UseCase {
	return spec.Random(spec.RandomConfig{
		Name: "meso", Seed: 99, IPs: 10, Apps: 2, Conns: 12,
		MinRateMBps: 20, MaxRateMBps: 120,
		MinLatencyNs: 300, MaxLatencyNs: 900,
	})
}

func main() {
	fmt.Println("phase sweep: one workload, ten random mesochronous phase assignments")
	fmt.Printf("%10s %8s %12s %14s\n", "phaseSeed", "met", "maxFIFO", "worstLatNs")
	for seed := int64(0); seed < 10; seed++ {
		m := topology.NewMesh(3, 2, 2)
		uc := buildSpec()
		spec.MapIPsByTraffic(uc, m)
		cfg := core.Config{Mode: core.Mesochronous, PhaseSeed: seed, Probes: true}
		core.PrepareTopology(m, cfg)
		net, err := core.Build(m, uc, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep := net.Run(5000, 30000)
		maxFIFO := 0
		for _, st := range net.Stages() {
			if st.MaxFIFOOccupancy() > maxFIFO {
				maxFIFO = st.MaxFIFOOccupancy()
			}
		}
		worst := 0.0
		for _, c := range rep.Conns {
			if c.LatMaxNs > worst {
				worst = c.LatMaxNs
			}
		}
		fmt.Printf("%10d %8v %9d/4 %14.1f\n", seed, rep.AllMet(), maxFIFO, worst)
		if !rep.AllMet() {
			log.Fatal("guarantees broke under a phase assignment — mesochronous operation is not skew-insensitive")
		}
		if maxFIFO > 4 {
			log.Fatal("bi-synchronous FIFO exceeded the 4-word bound of paper Section V")
		}
	}

	fmt.Println("\nasynchronous wrappers (plesiochronous clocks, ±200 ppm):")
	m := topology.NewMesh(3, 2, 2)
	uc := buildSpec()
	spec.MapIPsByTraffic(uc, m)
	cfg := core.Config{Mode: core.Asynchronous, PhaseSeed: 7, PPM: 200}
	core.PrepareTopology(m, cfg)
	net, err := core.Build(m, uc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep := net.Run(6000, 30000)
	fmt.Printf("all requirements met: %v (every element on its own clock)\n", rep.AllMet())
	if !rep.AllMet() {
		log.Fatal("asynchronous-wrapper configuration missed a requirement")
	}
	fmt.Println("\nthe system designer can treat the NoC as globally flit-synchronous —")
	fmt.Println("skew and even frequency offsets are absorbed by links and wrappers")
}
