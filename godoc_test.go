// Package repro's root test enforces the documentation contract: every
// package in the module carries a package comment (most in a dedicated
// doc.go) naming its role and paper anchor. CI runs the same check via
// go list; this test keeps it enforceable offline with go test ./...
package repro_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasDoc parses every non-test .go file under internal/
// and cmd/ and fails for any package where no file carries a package
// comment.
func TestEveryPackageHasDoc(t *testing.T) {
	documented := map[string]bool{} // package dir -> has a package comment
	seen := map[string]bool{}
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			seen[dir] = true
			fset := token.NewFileSet()
			f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if perr != nil {
				return perr
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented[dir] = true
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", root, err)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("only %d package dirs found; test is running from the wrong directory", len(seen))
	}
	for dir := range seen {
		if !documented[dir] {
			t.Errorf("package %s has no package comment (add a doc.go)", dir)
		}
	}
}
