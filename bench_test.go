// Benchmarks regenerating every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the mapping), plus engine
// micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// The Sec7 benchmarks print the experiment's headline numbers once per
// run via b.Log; -v shows them.
package repro

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/area"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/phit"
	"repro/internal/route"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

// --- E1: Fig. 5 — frequency/area trade-off ------------------------------

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5()
		if len(rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
	b.ReportMetric(area.RouterArea(5, 32, 650), "µm²@650MHz")
	b.ReportMetric(area.RouterMaxArea(5, 32), "µm²@fmax")
}

// --- E2/E3: Fig. 6 — arity and width scaling ----------------------------

func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig6a(); len(rows) != 6 {
			b.Fatal("bad sweep")
		}
	}
	b.ReportMetric(area.RouterFmaxMHz(2, 32), "fmaxMHz-arity2")
	b.ReportMetric(area.RouterFmaxMHz(7, 32), "fmaxMHz-arity7")
}

func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig6b(); len(rows) != 8 {
			b.Fatal("bad sweep")
		}
	}
	b.ReportMetric(area.RouterMaxArea(6, 256), "µm²-256bit")
	b.ReportMetric(area.RouterFmaxMHz(6, 256), "fmaxMHz-256bit")
}

// --- E4: Section V link/area comparison ---------------------------------

func BenchmarkLinkArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.LinkTable(); len(rows) < 8 {
			b.Fatal("bad table")
		}
	}
	b.ReportMetric(area.MesochronousRouterArea(5, 32, 600, false), "µm²-complete")
	b.ReportMetric(area.FIFOArea(4, 32, true), "µm²-customFIFO")
}

// --- E6: throughput headline --------------------------------------------

func BenchmarkThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Throughput(); len(rows) == 0 {
			b.Fatal("bad table")
		}
	}
	f := area.RouterFmaxMHz(6, 64)
	b.ReportMetric(area.RawThroughputGBps(6, 64, f), "GB/s-oneway")
}

// --- E5: Section VII — the 200-connection simulation --------------------

// sec7MeasureNs keeps the benchmark windows moderate; the full-length run
// is cmd/aelite-exp sec7.
const sec7MeasureNs = 30000

func BenchmarkSec7Aelite(b *testing.B) {
	var rep *core.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Sec7Aelite(experiments.Sec7Seed, 500, core.Synchronous, false, sec7MeasureNs)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllMet() {
			b.Fatal("aelite missed a requirement at 500 MHz")
		}
	}
	b.ReportMetric(float64(len(rep.Conns)), "connections")
	b.ReportMetric(float64(rep.TotalEdges)/b.Elapsed().Seconds()/float64(b.N), "edges/s")
}

func BenchmarkSec7AeliteMesochronous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Sec7Aelite(experiments.Sec7Seed, 500, core.Mesochronous, false, sec7MeasureNs)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllMet() {
			b.Fatal("mesochronous aelite missed a requirement")
		}
	}
}

func BenchmarkSec7AetherealBE(b *testing.B) {
	var viol int
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Sec7BEFactor(experiments.Sec7Seed, 500, sec7MeasureNs, experiments.Sec7BEOpportunism)
		if err != nil {
			b.Fatal(err)
		}
		viol = len(rep.Violations())
		if viol == 0 {
			b.Fatal("BE met everything at 500 MHz; no contrast")
		}
	}
	b.ReportMetric(float64(viol), "violations@500MHz")
}

func BenchmarkSec7FrequencyScan(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		_, c, err := experiments.FrequencyScan(experiments.Sec7Seed, []float64{500, 900, 1000}, sec7MeasureNs, parallel.Jobs(0))
		if err != nil {
			b.Fatal(err)
		}
		crossover = c
	}
	b.ReportMetric(crossover, "crossoverMHz")
}

// renderScan fixes a byte representation of a frequency scan so serial and
// parallel sweeps can be compared exactly, not approximately.
func renderScan(points []experiments.ScanPoint, crossover float64) []byte {
	var buf bytes.Buffer
	for _, p := range points {
		fmt.Fprintf(&buf, "%.3f %v %d %.6f\n", p.FreqMHz, p.AllMet, p.Violations, p.WorstExcessNs)
	}
	fmt.Fprintf(&buf, "crossover %.3f\n", crossover)
	return buf.Bytes()
}

// BenchmarkParallelSweep runs the Section VII frequency scan once with one
// worker and once with eight, asserts the two scan tables are
// byte-identical (the sweep runner's determinism contract), and reports
// the wall-clock speedup. On hardware with at least 8 CPUs the speedup
// must reach 3x; on smaller hosts the assertion is informational, because
// a worker pool cannot conjure cores (the byte-identity assertion holds
// everywhere). CI runs this with -benchtime 1x and archives the result in
// the BENCH_sweep.json artifact.
func BenchmarkParallelSweep(b *testing.B) {
	freqs := []float64{500, 600, 650, 700, 800, 850, 900, 1000}
	const measureNs = 10000
	var speedup float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		p1, c1, err := experiments.FrequencyScan(experiments.Sec7Seed, freqs, measureNs, 1)
		if err != nil {
			b.Fatal(err)
		}
		serial := time.Since(start)
		start = time.Now()
		p8, c8, err := experiments.FrequencyScan(experiments.Sec7Seed, freqs, measureNs, 8)
		if err != nil {
			b.Fatal(err)
		}
		par := time.Since(start)
		if !bytes.Equal(renderScan(p1, c1), renderScan(p8, c8)) {
			b.Fatalf("-j 1 and -j 8 scans diverge:\n%s\nvs\n%s", renderScan(p1, c1), renderScan(p8, c8))
		}
		speedup = serial.Seconds() / par.Seconds()
	}
	b.ReportMetric(speedup, "speedup-j8/j1")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
	b.ReportMetric(float64(runtime.NumCPU()), "host-cpus")
	// The >=3x assertion arms only with enough parallelism to satisfy it;
	// the armed/skipped status is reported as a metric so the CI artifact
	// records which regime this run measured — a disarmed run must never
	// read as a passing assertion.
	if armed := runtime.GOMAXPROCS(0) >= 8; armed {
		b.ReportMetric(1, "assert3x-armed")
		if speedup < 3 {
			b.Fatalf("parallel sweep speedup %.2fx at -j 8 on %d CPUs; want >= 3x",
				speedup, runtime.GOMAXPROCS(0))
		}
	} else {
		b.ReportMetric(0, "assert3x-armed")
		b.Logf("SKIPPED the >=3x assertion: GOMAXPROCS=%d on a %d-CPU host (needs >= 8); measured %.2fx at -j 8 (informational)",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), speedup)
	}
}

// --- ablations ----------------------------------------------------------

// BenchmarkAblationTableSize sweeps the TDM table size for a mid-size
// workload: smaller tables give coarser bandwidth granularity (more
// over-allocation), larger tables longer worst-case waits for few-slot
// connections. The four table sizes are independent builds fanned across
// the sweep runner; each point owns a private engine.
func BenchmarkAblationTableSize(b *testing.B) {
	sizes := []int{16, 32, 64, 128}
	for i := 0; i < b.N; i++ {
		type point struct {
			infeasible bool
			met        bool
		}
		points, err := parallel.Map(parallel.Jobs(0), len(sizes), func(i int) (point, error) {
			m := topology.NewMesh(3, 2, 2)
			uc := spec.Random(spec.RandomConfig{
				Name: "abl", Seed: 5, IPs: 12, Apps: 2, Conns: 16,
				MinRateMBps: 15, MaxRateMBps: 120,
				MinLatencyNs: 300, MaxLatencyNs: 900,
			})
			spec.MapIPsByTraffic(uc, m)
			cfg := core.Config{TableSize: sizes[i]}
			core.PrepareTopology(m, cfg)
			n, err := core.Build(m, uc, cfg)
			if err != nil {
				return point{infeasible: true}, nil // coarse tables may not place
			}
			return point{met: n.Run(4000, 15000).AllMet()}, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		for j, p := range points {
			if !p.infeasible && !p.met {
				b.Fatalf("requirements missed at table size %d", sizes[j])
			}
		}
	}
	b.ReportMetric(float64(len(sizes)), "points")
}

// BenchmarkAblationFIFODelay compares the two FIFO forwarding delays the
// paper admits (1-2 cycles) on the mesochronous network, both points
// through the sweep runner.
func BenchmarkAblationFIFODelay(b *testing.B) {
	delays := []int{1, 2}
	for i := 0; i < b.N; i++ {
		met, err := parallel.Map(parallel.Jobs(0), len(delays), func(i int) (bool, error) {
			m := topology.NewMesh(3, 2, 2)
			uc := spec.Random(spec.RandomConfig{
				Name: "fifo", Seed: 5, IPs: 12, Apps: 2, Conns: 12,
				MinRateMBps: 15, MaxRateMBps: 100,
				MinLatencyNs: 300, MaxLatencyNs: 900,
			})
			spec.MapIPsByTraffic(uc, m)
			cfg := core.Config{Mode: core.Mesochronous, FIFOForwardCycles: delays[i], PhaseSeed: 3}
			core.PrepareTopology(m, cfg)
			n, err := core.Build(m, uc, cfg)
			if err != nil {
				return false, err
			}
			return n.Run(4000, 15000).AllMet(), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		for j, ok := range met {
			if !ok {
				b.Fatalf("requirements missed with %d-cycle FIFO delay", delays[j])
			}
		}
	}
	b.ReportMetric(float64(len(delays)), "points")
}

// --- micro-benchmarks ----------------------------------------------------

func BenchmarkRouterStep(b *testing.B) {
	layout := phit.DefaultLayout
	c := router.NewCore("r", 6, layout)
	in := make([]phit.Phit, 6)
	hdr, _ := layout.Encode([]int{3}, 0, 0)
	in[0] = phit.Phit{Valid: true, Kind: phit.Header, Data: hdr}
	var out []phit.Phit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%3 == 0 {
			in[0] = phit.Phit{Valid: true, Kind: phit.Header, Data: hdr}
		} else {
			in[0] = phit.Phit{Valid: true, Kind: phit.Payload, EoP: i%3 == 2}
		}
		out = c.Step(in, out)
	}
}

func BenchmarkEngineSynchronous(b *testing.B) {
	// A full Section VII network, cost per simulated cycle.
	m := experiments.Sec7Mesh()
	cfg := core.Config{Transactional: true}
	core.PrepareTopology(m, cfg)
	uc, err := experiments.Sec7UseCase(m, experiments.Sec7Seed)
	if err != nil {
		b.Fatal(err)
	}
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng := n.Engine()
	period := n.BaseClock().Period
	eng.Run(1000 * period) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + period)
	}
	b.ReportMetric(float64(eng.Edges())/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkEngineMesochronous(b *testing.B) {
	// The same Section VII network with per-tile clock phases and link
	// pipeline stages: many distinct clock domains, the worst case for
	// the engine's edge scheduler.
	m := experiments.Sec7Mesh()
	cfg := core.Config{Transactional: true, Mode: core.Mesochronous, PhaseSeed: 7}
	core.PrepareTopology(m, cfg)
	uc, err := experiments.Sec7UseCase(m, experiments.Sec7Seed)
	if err != nil {
		b.Fatal(err)
	}
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng := n.Engine()
	period := n.BaseClock().Period
	eng.Run(1000 * period) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + period)
	}
	b.ReportMetric(float64(eng.Edges())/b.Elapsed().Seconds(), "edges/s")
}

// benchFastReplay builds the Section VII CBR workload twice — once
// cycle-accurate, once with the fast-replay compiler — primes the fast
// network until the compiler engages, measures the cycle-accurate cost
// per simulated cycle outside the timed loop, then times the engaged fast
// path per cycle and reports the speedup. The CBR workload is the honest
// comparison base: the default transactional workload's byte-exact rates
// are globally aperiodic, so the compiler (correctly) never engages there
// and falls back to cycle-accurate execution (see EXPERIMENTS.md).
func benchFastReplay(b *testing.B, mode core.Mode) {
	slow, _, err := experiments.BuildSec7CBR(experiments.Sec7Seed, mode, false)
	if err != nil {
		b.Fatal(err)
	}
	fast, _, err := experiments.BuildSec7CBR(experiments.Sec7Seed, mode, true)
	if err != nil {
		b.Fatal(err)
	}
	period := fast.BaseClock().Period

	// Prime until the compiler has recorded and verified a hyperperiod.
	feng := fast.Engine()
	for i := 0; i < 200 && !fast.Replay().Engaged(); i++ {
		feng.Run(feng.Now() + 1000*period)
	}
	if !fast.Replay().Engaged() {
		inert, why := fast.Replay().Inert()
		b.Fatalf("fast path never engaged (inert=%v %q)", inert, why)
	}

	// Cycle-accurate reference cost per cycle, measured on the twin.
	seng := slow.Engine()
	seng.Run(1000 * period) // prime past start-up transients
	const refCycles = 2000
	start := time.Now()
	seng.Run(seng.Now() + refCycles*period)
	slowNsPerCycle := float64(time.Since(start).Nanoseconds()) / refCycles

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feng.Run(feng.Now() + period)
	}
	b.StopTimer()
	fastNsPerCycle := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(feng.Edges())/b.Elapsed().Seconds(), "edges/s")
	b.ReportMetric(slowNsPerCycle, "slow-ns/cycle")
	if fastNsPerCycle > 0 {
		b.ReportMetric(slowNsPerCycle/fastNsPerCycle, "speedup")
	}
	st := fast.Replay().ProgStats()
	b.ReportMetric(float64(st.ReplayedInstants), "replayed-instants")
}

func BenchmarkEngineSynchronousFast(b *testing.B) {
	benchFastReplay(b, core.Synchronous)
}

func BenchmarkEngineMesochronousFast(b *testing.B) {
	benchFastReplay(b, core.Mesochronous)
}

// BenchmarkTraceOverhead measures what the observability layer costs on
// the mesochronous Section VII network and asserts its budget: a run with
// an attached streaming metrics sink stays within 10% of the untraced
// run. The untraced engine *is* the disabled-tracing path (every emission
// site reduced to a nil test), so the pair also bounds the zero-cost
// claim. Many short trials alternate run order and each variant is
// summarised by the mean of its fastest half: CPU steal and scheduler
// preemption only ever inflate a trial, so trimming removes the spikes
// while averaging the clean bulk keeps the estimate tight — a lone min
// would itself be a noisy extreme, and a plain mean absorbs every spike.
// The assertion lives in a benchmark, not a test, so plain
// `go test ./...` cannot flake under load — CI runs it explicitly with
// -bench BenchmarkTraceOverhead -benchtime 1x.
func BenchmarkTraceOverhead(b *testing.B) {
	build := func(attachSink bool) *sim.Engine {
		m := experiments.Sec7Mesh()
		cfg := core.Config{Transactional: true, Mode: core.Mesochronous, PhaseSeed: 7}
		core.PrepareTopology(m, cfg)
		uc, err := experiments.Sec7UseCase(m, experiments.Sec7Seed)
		if err != nil {
			b.Fatal(err)
		}
		n, err := core.Build(m, uc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if attachSink {
			bus := trace.NewBus()
			trace.NewMetrics(bus) // streaming aggregation, no event retention
			n.AttachTracer(bus)
		}
		eng := n.Engine()
		eng.Run(1000 * n.BaseClock().Period) // prime
		return eng
	}
	plain := build(false)
	traced := build(true)
	period := clock.Time(clock.PeriodFromMHz(500))

	const trials = 40
	const cycles = 100
	timeRun := func(eng *sim.Engine) time.Duration {
		s := time.Now()
		eng.Run(eng.Now() + cycles*period)
		return time.Since(s)
	}
	var dPlain, dTraced []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < trials; t++ {
			if t%2 == 0 {
				dPlain = append(dPlain, float64(timeRun(plain)))
				dTraced = append(dTraced, float64(timeRun(traced)))
			} else {
				dTraced = append(dTraced, float64(timeRun(traced)))
				dPlain = append(dPlain, float64(timeRun(plain)))
			}
		}
	}
	b.StopTimer()
	trimmedMean := func(ds []float64) float64 {
		sort.Float64s(ds)
		keep := ds[:(len(ds)+1)/2] // fastest half; the rest is steal/preemption
		sum := 0.0
		for _, d := range keep {
			sum += d
		}
		return sum / float64(len(keep))
	}
	ratio := trimmedMean(dTraced) / trimmedMean(dPlain)
	b.ReportMetric(ratio, "traced/untraced")
	if ratio > 1.10 {
		b.Fatalf("tracing overhead %.1f%% exceeds the 10%% budget (trimmed means over %d trials of %d cycles)",
			(ratio-1)*100, len(dPlain), cycles)
	}
}

func BenchmarkAllocator(b *testing.B) {
	m := experiments.Sec7Mesh()
	core.PrepareTopology(m, core.Config{Transactional: true})
	uc, err := experiments.Sec7UseCase(m, experiments.Sec7Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(m, uc, core.Config{Transactional: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeaderCodec(b *testing.B) {
	layout := phit.DefaultLayout
	path := []int{1, 2, 3, 0, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := layout.Encode(path, 7, 3)
		if err != nil {
			b.Fatal(err)
		}
		for h := 0; h < len(path); h++ {
			_, w = layout.NextPort(w)
		}
	}
}

func BenchmarkSlotAllocation(b *testing.B) {
	m := topology.NewMesh(4, 3, 4)
	nis := m.AllNIs()
	var reqs []slots.Request
	for i := 0; i < 60; i++ {
		a := nis[(i*7)%len(nis)]
		c := nis[(i*13+5)%len(nis)]
		if m.Node(a).Router == m.Node(c).Router {
			continue
		}
		paths, err := route.Candidates(m, a, c, 4)
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, slots.Request{Conn: phit.ConnID(i + 1), Paths: paths, Count: 1 + i%4})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slots.Allocate(64, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBisyncFIFO(b *testing.B) {
	f := sim.NewBisync[phit.Phit]("b", 4, 1000)
	now := clock.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 2000
		f.Push(now, phit.Phit{Valid: true})
		if f.Valid(now + 1000) {
			f.Pop(now + 1000)
		}
	}
}

// BenchmarkReliableOverhead measures the end-to-end reliability shell on
// the mesochronous Section VII network, both ways: with the shell
// disabled (the default; its cost is a nil check per NI receive and per
// built flit) and enabled on every connection. The disabled run is the
// baseline every other benchmark exercises, so a regression of the
// disabled path shows up in BenchmarkEngineMesochronous; this one pins
// the enabled/disabled ratio. Same trial scheme as
// BenchmarkTraceOverhead: alternate short runs, trimmed mean of the
// fastest half per variant.
func BenchmarkReliableOverhead(b *testing.B) {
	build := func(reliable bool) *sim.Engine {
		m := experiments.Sec7Mesh()
		cfg := core.Config{Transactional: true, Mode: core.Mesochronous, PhaseSeed: 7, Reliable: reliable}
		core.PrepareTopology(m, cfg)
		uc, err := experiments.Sec7UseCase(m, experiments.Sec7Seed)
		if err != nil {
			b.Fatal(err)
		}
		n, err := core.Build(m, uc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng := n.Engine()
		eng.Run(1000 * n.BaseClock().Period) // prime
		return eng
	}
	off := build(false)
	on := build(true)
	period := clock.Time(clock.PeriodFromMHz(500))

	const trials = 40
	const cycles = 100
	timeRun := func(eng *sim.Engine) time.Duration {
		s := time.Now()
		eng.Run(eng.Now() + cycles*period)
		return time.Since(s)
	}
	var dOff, dOn []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < trials; t++ {
			if t%2 == 0 {
				dOff = append(dOff, float64(timeRun(off)))
				dOn = append(dOn, float64(timeRun(on)))
			} else {
				dOn = append(dOn, float64(timeRun(on)))
				dOff = append(dOff, float64(timeRun(off)))
			}
		}
	}
	b.StopTimer()
	trimmedMean := func(ds []float64) float64 {
		sort.Float64s(ds)
		keep := ds[:(len(ds)+1)/2]
		sum := 0.0
		for _, d := range keep {
			sum += d
		}
		return sum / float64(len(keep))
	}
	b.ReportMetric(trimmedMean(dOn)/trimmedMean(dOff), "reliable/baseline")
}
