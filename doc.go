// Package repro reproduces "aelite: A Flit-Synchronous Network on Chip
// with Composable and Predictable Services" (Hansson, Subburaman,
// Goossens — DATE 2009) as a Go library.
//
// The repository contains, from the bottom up:
//
//   - a deterministic multi-clock-domain cycle-accurate simulation engine
//     (internal/sim, internal/clock);
//   - the aelite network: TDM slot tables and contention-free allocation
//     (internal/slots), the three-stage arbiter-less router
//     (internal/router), mesochronous link pipeline stages (internal/link),
//     asynchronous wrappers for plesiochronous operation (internal/wrapper)
//     and network interfaces with end-to-end credit flow control
//     (internal/ni);
//   - the Æthereal combined GS+BE baseline in best-effort mode
//     (internal/aethereal);
//   - the analytical service model (internal/analysis), the calibrated
//     90 nm area/frequency model (internal/area) and the experiment
//     harness regenerating every table and figure of the paper's
//     evaluation (internal/experiments);
//   - a public façade assembling all of it from a use-case spec
//     (internal/core, internal/spec, internal/topology, internal/route,
//     internal/traffic).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate each experiment:
//
//	go test -bench=. -benchmem
package repro
