// Command aelite-alloc runs the design flow up to slot allocation for a
// use case: route every connection, size its TDM reservation from its
// requirements, allocate contention-free slots, and print the resulting
// tables, guarantees and link utilisation.
//
// Usage:
//
//	aelite-alloc -spec usecase.json [-cols 4 -rows 3 -nis 4] [flags]
//	aelite-alloc -random N [flags]        (N random connections instead)
//	aelite-alloc -scenario FAMILY -conns N [flags]   (generated workload)
//
// Flags:
//
//	-freq MHZ    network frequency (default 500)
//	-table N     slot-table size (default: search)
//	-mode M      synchronous | mesochronous | asynchronous
//	-alloc A     slot allocator: greedy | ripup (default greedy)
//	-scenario F  generated workload family: uniform | hotspot | transpose |
//	             multimedia | dataflow (see internal/scenario)
//	-conns N     connection count for -scenario
//	-tables      print every NI's slot table
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/phit"
	"repro/internal/routerless"
	"repro/internal/scenario"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
)

// tool names this command in every cli diagnostic.
const tool = "aelite-alloc"

// layoutFor picks the header layout the mesh diameter needs: the worst
// minimal route visits cols+rows-1 routers. The paper's 32-bit layout
// encodes 7 hops; the 64-bit WideLayout (8-byte words) 16. Beyond that
// no runnable header exists — allocation-only planning (aelite-exp
// scale) is the tool at that size.
func layoutFor(cols, rows int) (phit.HeaderLayout, int, error) {
	ports := cols + rows - 1
	switch {
	case ports <= phit.DefaultLayout.MaxHops():
		return phit.DefaultLayout, 4, nil
	case ports <= phit.WideLayout.MaxHops():
		return phit.WideLayout, 8, nil
	}
	return phit.HeaderLayout{}, 0, fmt.Errorf(
		"a %dx%d mesh needs %d-hop headers; the widest layout encodes %d (allocation-only planning via aelite-exp scale has no such cap)",
		cols, rows, ports, phit.WideLayout.MaxHops())
}

func main() {
	specPath := flag.String("spec", "", "use-case JSON (see internal/spec)")
	random := flag.Int("random", 0, "generate this many random connections instead of loading a spec")
	seed := flag.Int64("seed", 1, "seed for -random/-scenario")
	cols := flag.Int("cols", 4, "mesh columns")
	rows := flag.Int("rows", 3, "mesh rows")
	nis := flag.Int("nis", 4, "NIs per router")
	freq := flag.Float64("freq", 500, "frequency in MHz")
	table := flag.Int("table", 0, "TDM table size (0 = search)")
	mode := flag.String("mode", "synchronous", "clocking: synchronous|mesochronous|asynchronous")
	alloc := flag.String("alloc", "greedy", "slot allocator: greedy | ripup")
	scenarioF := flag.String("scenario", "", "generated workload family: uniform|hotspot|transpose|multimedia|dataflow")
	conns := flag.Int("conns", 0, "connection count for -scenario")
	printTables := flag.Bool("tables", false, "print per-NI slot tables")
	backendF := flag.String("backend", "aelite", "aelite | routerless (ring/slot allocation instead of TDM tables)")
	flag.Parse()

	// Malformed invocations are rejected up front with one-line
	// diagnostics and exit code 2, matching aelite-sim's contract.
	if *cols < 1 || *rows < 1 || *nis < 1 {
		os.Exit(cli.Usage(tool, fmt.Errorf("mesh dimensions must be at least 1 (-cols %d -rows %d -nis %d)", *cols, *rows, *nis)))
	}
	if *freq <= 0 {
		os.Exit(cli.Usage(tool, fmt.Errorf("-freq %g must be positive", *freq)))
	}
	if *table < 0 {
		os.Exit(cli.Usage(tool, fmt.Errorf("-table %d must not be negative (0 = search)", *table)))
	}
	if _, err := slots.ByName(*alloc); err != nil {
		os.Exit(cli.Usage(tool, fmt.Errorf("-alloc: %w", err)))
	}
	switch *mode {
	case "synchronous", "mesochronous", "asynchronous":
	default:
		os.Exit(cli.Usage(tool, fmt.Errorf("unknown mode %q (synchronous | mesochronous | asynchronous)", *mode)))
	}
	switch *backendF {
	case "aelite", "routerless":
	default:
		// Allocation inspection exists for slot-scheduled fabrics; the
		// best-effort baseline has no reservations to print.
		os.Exit(cli.Usage(tool, fmt.Errorf("unknown backend %q (aelite | routerless)", *backendF)))
	}
	if *backendF == "routerless" && *mode != "synchronous" {
		os.Exit(cli.Usage(tool, fmt.Errorf("-backend routerless is single-clock; -mode %s needs the aelite backend", *mode)))
	}
	if *scenarioF != "" {
		if _, err := scenario.ParseFamily(*scenarioF); err != nil {
			os.Exit(cli.Usage(tool, fmt.Errorf("-scenario: %w", err)))
		}
		if *specPath != "" || *random > 0 {
			os.Exit(cli.Usage(tool, errors.New("-scenario excludes -spec and -random")))
		}
		if *conns < 1 {
			os.Exit(cli.Usage(tool, fmt.Errorf("-scenario needs -conns >= 1 (got %d)", *conns)))
		}
	} else if *conns != 0 {
		os.Exit(cli.Usage(tool, errors.New("-conns applies only with -scenario")))
	}
	if *specPath == "" && *random <= 0 && *scenarioF == "" {
		os.Exit(cli.Usage(tool, errors.New("need -spec, -random or -scenario")))
	}

	m := topology.NewMesh(*cols, *rows, *nis)
	layout, wordBytes, err := layoutFor(*cols, *rows)
	fatal(err)
	var uc *spec.UseCase
	switch {
	case *scenarioF != "":
		fam, err := scenario.ParseFamily(*scenarioF)
		fatal(err)
		cfg := scenario.Default(fam, *cols, *rows, *conns, *seed)
		cfg.NIsPerRouter = *nis
		cfg.FreqMHz = *freq
		cfg.WordBytes = wordBytes
		if *table != 0 {
			cfg.TableSize = *table
		}
		s, err := scenario.Generate(cfg)
		fatal(err)
		uc = s.UseCase
	case *specPath != "":
		uc, err = spec.Load(*specPath)
		fatal(err)
	default:
		uc = spec.Random(spec.RandomConfig{
			Name: "random", Seed: *seed,
			IPs: 2 * *cols * *rows * *nis / 2, Apps: 4, Conns: *random,
			MinRateMBps: 10, MaxRateMBps: 300, HeavyFraction: 0.1, HeavyMinRateMBps: 40,
			MinLatencyNs: 150, MaxLatencyNs: 900,
		})
	}
	needMap := false
	for _, ip := range uc.IPs {
		if ip.NI == topology.Invalid {
			needMap = true
		}
	}
	if needMap {
		spec.MapIPsByTraffic(uc, m)
	}

	if *backendF == "routerless" {
		n, err := routerless.Build(m, uc, routerless.Config{FreqMHz: *freq, WordBytes: wordBytes})
		fatal(err)
		fmt.Printf("use case %q: %d IPs, %d connections on a %dx%d mesh (%d NIs/router)\n",
			uc.Name, len(uc.IPs), len(uc.Connections), *cols, *rows, *nis)
		fmt.Printf("routerless ring overlay, %.0f MHz, %d rings\n\n", *freq, n.Rings())
		fmt.Printf("%6s %9s %9s %9s %6s %5s\n", "conn", "reqMB/s", "gntMB/s", "boundNs", "slots", "hops")
		for _, c := range uc.Connections {
			info, err := n.Info(c.ID)
			fatal(err)
			fmt.Printf("%6d %9.1f %9.1f %9.1f %6d %5d\n",
				c.ID, c.BandwidthMBps, info.GuaranteedMBps, info.BoundNs,
				len(info.Slots), info.PathHops)
		}
		fmt.Println("\nring occupancy:")
		n.WriteRings(os.Stdout)
		return
	}

	cfg := core.Config{FreqMHz: *freq, TableSize: *table, Allocator: *alloc,
		Layout: layout, WordBytes: wordBytes}
	switch *mode {
	case "synchronous":
	case "mesochronous":
		cfg.Mode = core.Mesochronous
	case "asynchronous":
		cfg.Mode = core.Asynchronous
	}
	core.PrepareTopology(m, cfg)
	n, err := core.Build(m, uc, cfg)
	fatal(err)

	fmt.Printf("use case %q: %d IPs, %d connections on a %dx%d mesh (%d NIs/router)\n",
		uc.Name, len(uc.IPs), len(uc.Connections), *cols, *rows, *nis)
	fmt.Printf("mode %s, %.0f MHz, slot table %d, allocator %s\n\n", cfg.Mode, *freq, n.Cfg.TableSize, *alloc)

	fmt.Printf("%6s %9s %9s %9s %6s %5s %8s\n", "conn", "reqMB/s", "gntMB/s", "boundNs", "slots", "hops", "recvCap")
	for _, c := range uc.Connections {
		info, err := n.Info(c.ID)
		fatal(err)
		fmt.Printf("%6d %9.1f %9.1f %9.1f %6d %5d %8d\n",
			c.ID, c.BandwidthMBps, info.GuaranteedMBps, info.BoundNs,
			len(info.Slots), info.PathHops, info.RecvCapacity)
	}

	// Link utilisation summary.
	type lu struct {
		id   topology.LinkID
		util float64
	}
	var lus []lu
	for _, l := range m.Links() {
		lus = append(lus, lu{l.ID, n.Alloc.LinkUtilisation(l.ID)})
	}
	sort.Slice(lus, func(i, j int) bool { return lus[i].util > lus[j].util })
	fmt.Println("\nbusiest links:")
	for i := 0; i < 10 && i < len(lus); i++ {
		l := m.Link(lus[i].id)
		fmt.Printf("  %-24s %5.1f%%\n",
			m.Node(l.From).Name+" > "+m.Node(l.To).Name, lus[i].util*100)
	}

	if *printTables {
		fmt.Println("\nNI slot tables:")
		for _, id := range m.AllNIs() {
			t := n.Alloc.NITable(id)
			fmt.Printf("  %-10s %v\n", m.Node(id).Name, t.Slots)
		}
	}
}

func fatal(err error) {
	if err != nil {
		os.Exit(cli.Failure(tool, err))
	}
}
