// Command aelite-sim runs a use case through the cycle-accurate simulator
// — either the aelite guaranteed-service network (synchronous,
// mesochronous or asynchronous) or the Æthereal best-effort baseline —
// and prints the per-connection report.
//
// Usage:
//
//	aelite-sim -spec usecase.json [flags]
//	aelite-sim -random N [flags]
//
// Flags:
//
//	-backend B    aelite | be
//	-mode M       synchronous | mesochronous | asynchronous (aelite only)
//	-freq MHZ     network frequency (default 500)
//	-warmup NS    warm-up before measurement (default 10000)
//	-measure NS   measurement window (default 50000)
//	-tx           transactional traffic (line-rate bursts) instead of CBR
//	-probes       enable dynamic TDM verification probes (aelite only)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/topology"
)

func main() {
	specPath := flag.String("spec", "", "use-case JSON")
	random := flag.Int("random", 0, "generate this many random connections")
	seed := flag.Int64("seed", 1, "seed for -random")
	cols := flag.Int("cols", 4, "mesh columns")
	rows := flag.Int("rows", 3, "mesh rows")
	nis := flag.Int("nis", 4, "NIs per router")
	backend := flag.String("backend", "aelite", "aelite | be")
	mode := flag.String("mode", "synchronous", "synchronous|mesochronous|asynchronous")
	freq := flag.Float64("freq", 500, "frequency in MHz")
	warmup := flag.Float64("warmup", 10000, "warm-up in ns")
	measure := flag.Float64("measure", 50000, "measurement window in ns")
	tx := flag.Bool("tx", false, "transactional traffic")
	probes := flag.Bool("probes", false, "TDM verification probes")
	flag.Parse()

	m := topology.NewMesh(*cols, *rows, *nis)
	var uc *spec.UseCase
	var err error
	switch {
	case *specPath != "":
		uc, err = spec.Load(*specPath)
		fatal(err)
	case *random > 0:
		uc = spec.Random(spec.RandomConfig{
			Name: "random", Seed: *seed,
			IPs: *cols * *rows * *nis, Apps: 4, Conns: *random,
			MinRateMBps: 10, MaxRateMBps: 300, HeavyFraction: 0.1, HeavyMinRateMBps: 40,
			MinLatencyNs: 150, MaxLatencyNs: 900,
		})
	default:
		fmt.Fprintln(os.Stderr, "aelite-sim: need -spec or -random")
		os.Exit(2)
	}
	unmapped := false
	for _, ip := range uc.IPs {
		if ip.NI == topology.Invalid {
			unmapped = true
		}
	}
	if unmapped {
		spec.MapIPsByTraffic(uc, m)
	}

	var rep *core.Report
	if *backend == "be" {
		n, err := core.BuildBE(m, uc, core.BEConfig{FreqMHz: *freq, Transactional: *tx})
		fatal(err)
		rep = n.Run(*warmup, *measure)
	} else {
		cfg := core.Config{FreqMHz: *freq, Probes: *probes, Transactional: *tx}
		switch *mode {
		case "synchronous":
		case "mesochronous":
			cfg.Mode = core.Mesochronous
		case "asynchronous":
			cfg.Mode = core.Asynchronous
		default:
			fmt.Fprintf(os.Stderr, "aelite-sim: unknown mode %q\n", *mode)
			os.Exit(2)
		}
		core.PrepareTopology(m, cfg)
		n, err := core.Build(m, uc, cfg)
		fatal(err)
		rep = n.Run(*warmup, *measure)
	}
	rep.Write(os.Stdout)
	if rep.AllMet() {
		fmt.Println("\nall requirements met")
	} else {
		fmt.Printf("\n%d requirements MISSED\n", len(rep.Violations()))
		os.Exit(1)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "aelite-sim:", err)
		os.Exit(1)
	}
}
