// Command aelite-sim runs a use case through the cycle-accurate simulator
// — the aelite guaranteed-service network (synchronous, mesochronous or
// asynchronous), the Æthereal best-effort baseline, or the routerless
// ring-overlay fabric — and prints the per-connection report. Non-aelite
// backends are built through the internal/backend registry.
//
// Usage:
//
//	aelite-sim -spec usecase.json [flags]
//	aelite-sim -random N [flags]
//	aelite-sim -scenario FAMILY -conns N [flags]
//
// Flags:
//
//	-scenario F    generated workload family: uniform | hotspot | transpose |
//	               multimedia | dataflow (internal/scenario; deterministic in
//	               -seed, rates replay-admissible by default)
//	-conns N       connection count for -scenario
//	-alloc A       slot allocator: greedy | ripup (default greedy)
//	-backend B     aelite | aethereal (alias: be) | routerless
//	-mode M        synchronous | mesochronous | asynchronous (aelite only)
//	-freq MHZ      network frequency (default 500)
//	-warmup NS     warm-up before measurement (default 10000)
//	-measure NS    measurement window (default 50000)
//	-tx            transactional traffic (line-rate bursts) instead of CBR
//	-probes        enable dynamic TDM verification probes (aelite only)
//	-faults SPEC   fault campaign: op@TIMEns:target[:param];... or random:N
//	-fault-seed N  seed for random fault events (same seed, same campaign)
//	-reliable      wrap every NI port in the end-to-end reliability shell:
//	               CRC-protected flits, go-back-N retransmission and link
//	               quarantine (aelite only)
//	-bitflip-rate P  per-phit payload bit-flip probability on every link,
//	               0..1; a seeded rate process on top of -faults events
//	-drop-rate P   per-flit drop probability on every link, 0..1
//	-strict        fail fast on the first envelope violation instead of
//	               collecting violations and degrading gracefully
//	-skew-ps PS    checkerboard tile-skew override in mesochronous mode;
//	               values past half a period leave the paper's envelope
//	-runs N        fault-campaign sweep: run N campaigns with consecutive
//	               fault seeds (-fault-seed, +1, +2, ...), each on its own
//	               freshly built network, and print the per-run reports and
//	               summaries in seed order (requires -faults)
//	-j N           parallel workers for -runs sweeps (default all CPUs;
//	               output is byte-identical at every worker count)
//	-reconfig S    run-time reconfiguration script: semicolon-separated
//	               actions, each close@TIMEns:CONN or
//	               open@TIMEns:SRCIP:DSTIP:MBPS:LATNS, applied inside the
//	               measurement window (TIME is relative to its start). A
//	               close drains and releases the connection; an open runs
//	               admission control and either admits the request with its
//	               full guarantees under a fresh connection id or prints the
//	               typed rejection reason (no-path, no-slots,
//	               bound-infeasible, ...) and changes nothing. Running
//	               connections are never disturbed either way. With -audit
//	               the auditor is resynchronised after every action. aelite
//	               only, single runs, not asynchronous mode
//	-fast          hyperperiod-compiled fast replay: record one hyperperiod
//	               of the cycle-accurate schedule and replay it; workloads
//	               that are not provably periodic fall back to cycle-accurate
//	               execution untouched (aelite only)
//	-audit         attach the guarantee-conformance auditor: every flit is
//	               checked against the connection's analytical worst-case
//	               latency and throughput contract, slot ownership and
//	               in-order delivery; violations print one-line diagnostics
//	               and exit non-zero (with -strict the first one fails
//	               fast); bounds-carrying backends (aelite, routerless)
//	               only, single runs only
//	-trace-out F   write a Chrome trace-event JSON of every flit lifecycle
//	               event (load in Perfetto or chrome://tracing)
//	-metrics-out F write aggregated per-connection/per-component metrics;
//	               a .csv suffix selects CSV, anything else JSON
//	-pprof F       write a CPU profile of the simulation run
//
// A campaign run (-faults or -skew-ps) prints the connection report
// followed by the deterministic campaign summary. Any fatal envelope
// violation (strict mode) or internal failure exits non-zero with a
// one-line diagnostic instead of a raw panic trace; invalid flag
// combinations are rejected up front with exit code 2.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"errors"

	"repro/internal/audit"
	"repro/internal/backend"
	"repro/internal/cli"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/phit"
	"repro/internal/scenario"
	"repro/internal/slots"
	"repro/internal/spec"
	"repro/internal/topology"
	"repro/internal/trace"
)

type options struct {
	specPath  string
	random    int
	seed      int64
	cols      int
	rows      int
	nis       int
	backend   string
	mode      string
	freq      float64
	warmup    float64
	measure   float64
	tx        bool
	probes    bool
	faults    string
	faultSeed int64
	reliable  bool
	bitflip   float64
	drop      float64
	strict    bool
	skewPS    int64
	runs      int
	jobs      int
	audit     bool
	reconfig  string
	fast      bool
	scenario  string
	conns     int
	alloc     string

	traceOut   string
	metricsOut string
	pprofOut   string
}

// rateFaults reports whether a seeded rate process is armed.
func (o *options) rateFaults() bool { return o.bitflip > 0 || o.drop > 0 }

// canonicalBackend resolves the -backend flag to a registry name ("be"
// stays as a compatibility alias for the Æthereal GS+BE baseline).
func (o *options) canonicalBackend() string {
	if o.backend == "be" {
		return "aethereal"
	}
	return o.backend
}

// faultPlan assembles the campaign plan for one run: the event spec (if
// any) parsed under the given seed, plus the all-links rate rules.
func (o *options) faultPlan(faultSeed int64) (*fault.Plan, error) {
	plan := &fault.Plan{Seed: faultSeed}
	if o.faults != "" {
		var err error
		plan, err = fault.ParseSpec(o.faults, faultSeed)
		if err != nil {
			return nil, err
		}
	}
	if o.rateFaults() {
		plan.Rates = append(plan.Rates, fault.RateRule{BitFlip: o.bitflip, Drop: o.drop})
	}
	return plan, nil
}

// validate rejects malformed flag combinations before anything is built,
// so every misuse gets a one-line diagnostic and exit code 2 instead of a
// late panic or a silently ignored value.
func (o *options) validate() error {
	if o.cols < 1 || o.rows < 1 || o.nis < 1 {
		return fmt.Errorf("mesh dimensions must be at least 1 (-cols %d -rows %d -nis %d)", o.cols, o.rows, o.nis)
	}
	if o.freq <= 0 {
		return fmt.Errorf("-freq %g must be positive", o.freq)
	}
	if o.warmup < 0 || o.measure <= 0 {
		return fmt.Errorf("-warmup %g must be >= 0 and -measure %g > 0", o.warmup, o.measure)
	}
	if o.random < 0 {
		return fmt.Errorf("-random %d must be positive", o.random)
	}
	if o.scenario != "" {
		if _, err := scenario.ParseFamily(o.scenario); err != nil {
			return fmt.Errorf("-scenario: %w", err)
		}
		if o.specPath != "" || o.random > 0 {
			return fmt.Errorf("-scenario excludes -spec and -random")
		}
		if o.conns < 1 {
			return fmt.Errorf("-scenario needs -conns >= 1 (got %d)", o.conns)
		}
	} else if o.conns != 0 {
		return fmt.Errorf("-conns applies only with -scenario")
	}
	if _, err := slots.ByName(o.alloc); err != nil {
		return fmt.Errorf("-alloc: %w", err)
	}
	if _, err := backend.ByName(o.canonicalBackend()); err != nil {
		return fmt.Errorf("-backend: %w", err)
	}
	if o.backend != "aelite" && o.mode != "synchronous" {
		return fmt.Errorf("-backend %s is single-clock; -mode %s needs the aelite backend", o.backend, o.mode)
	}
	switch o.mode {
	case "synchronous", "mesochronous", "asynchronous":
	default:
		return fmt.Errorf("unknown mode %q (synchronous | mesochronous | asynchronous)", o.mode)
	}
	if o.skewPS < 0 {
		return fmt.Errorf("-skew-ps %d is negative; skew is a magnitude in picoseconds", o.skewPS)
	}
	if o.skewPS != 0 && o.mode != "mesochronous" {
		return fmt.Errorf("-skew-ps applies only to -mode mesochronous (got %q)", o.mode)
	}
	if o.faults != "" {
		if _, err := fault.ParseSpec(o.faults, o.faultSeed); err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
	}
	if err := (fault.RateRule{BitFlip: o.bitflip, Drop: o.drop}).Validate(); err != nil {
		return fmt.Errorf("-bitflip-rate/-drop-rate: %w", err)
	}
	if (o.reliable || o.rateFaults()) && o.backend != "aelite" {
		return fmt.Errorf("-reliable/-bitflip-rate/-drop-rate need the aelite backend (got %q)", o.backend)
	}
	if o.audit {
		// Every backend emits the traced flit lifecycle, but only
		// bounds-carrying backends have contracts for the auditor to check.
		bk, err := backend.ByName(o.canonicalBackend())
		if err == nil && !bk.HasBounds() {
			return fmt.Errorf("-audit checks analytical guarantee contracts and backend %q has none (best effort)", o.backend)
		}
	}
	if o.audit && o.runs > 1 {
		return fmt.Errorf("-audit attaches to a single run and cannot serve a -runs sweep")
	}
	if o.runs < 1 {
		return fmt.Errorf("-runs %d must be at least 1", o.runs)
	}
	if o.jobs < 1 {
		return fmt.Errorf("-j %d must be at least 1", o.jobs)
	}
	if o.reconfig != "" {
		if o.backend != "aelite" {
			return fmt.Errorf("-reconfig needs the aelite backend (got %q)", o.backend)
		}
		if o.mode == "asynchronous" {
			return fmt.Errorf("-reconfig cannot serve asynchronous mode (slot counters are token-indexed)")
		}
		if o.runs > 1 {
			return fmt.Errorf("-reconfig scripts one run and cannot serve a -runs sweep")
		}
		if _, err := parseReconfigScript(o.reconfig); err != nil {
			return fmt.Errorf("-reconfig: %w", err)
		}
	}
	if o.runs > 1 {
		if o.faults == "" && !o.rateFaults() {
			return fmt.Errorf("-runs %d sweeps fault seeds and needs -faults, -bitflip-rate or -drop-rate", o.runs)
		}
		if o.traceOut != "" || o.metricsOut != "" {
			return fmt.Errorf("-trace-out/-metrics-out write one file and cannot serve a -runs sweep")
		}
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.specPath, "spec", "", "use-case JSON")
	flag.IntVar(&o.random, "random", 0, "generate this many random connections")
	flag.StringVar(&o.scenario, "scenario", "", "generated workload family: uniform|hotspot|transpose|multimedia|dataflow")
	flag.IntVar(&o.conns, "conns", 0, "connection count for -scenario")
	flag.StringVar(&o.alloc, "alloc", "greedy", "slot allocator: greedy | ripup")
	flag.Int64Var(&o.seed, "seed", 1, "seed for -random/-scenario")
	flag.IntVar(&o.cols, "cols", 4, "mesh columns")
	flag.IntVar(&o.rows, "rows", 3, "mesh rows")
	flag.IntVar(&o.nis, "nis", 4, "NIs per router")
	flag.StringVar(&o.backend, "backend", "aelite", "aelite | aethereal (alias: be) | routerless")
	flag.StringVar(&o.mode, "mode", "synchronous", "synchronous|mesochronous|asynchronous")
	flag.Float64Var(&o.freq, "freq", 500, "frequency in MHz")
	flag.Float64Var(&o.warmup, "warmup", 10000, "warm-up in ns")
	flag.Float64Var(&o.measure, "measure", 50000, "measurement window in ns")
	flag.BoolVar(&o.tx, "tx", false, "transactional traffic")
	flag.BoolVar(&o.probes, "probes", false, "TDM verification probes")
	flag.StringVar(&o.faults, "faults", "", "fault campaign spec")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for random fault events")
	flag.BoolVar(&o.reliable, "reliable", false, "end-to-end reliability shell on every NI port")
	flag.Float64Var(&o.bitflip, "bitflip-rate", 0, "per-phit payload bit-flip probability on every link (0..1)")
	flag.Float64Var(&o.drop, "drop-rate", 0, "per-flit drop probability on every link (0..1)")
	flag.BoolVar(&o.strict, "strict", false, "fail fast on the first envelope violation")
	flag.Int64Var(&o.skewPS, "skew-ps", 0, "mesochronous tile-skew override in ps")
	flag.IntVar(&o.runs, "runs", 1, "fault-campaign sweep: campaigns with consecutive fault seeds")
	flag.IntVar(&o.jobs, "j", runtime.NumCPU(), "parallel workers for -runs sweeps")
	flag.BoolVar(&o.audit, "audit", false, "check every flit against the analytical guarantee contracts")
	flag.BoolVar(&o.fast, "fast", false, "hyperperiod-compiled fast replay (falls back to cycle-accurate when the workload is not provably periodic)")
	flag.StringVar(&o.reconfig, "reconfig", "", "run-time reconfiguration script (close@TIMEns:CONN;open@TIMEns:SRC:DST:MBPS:LATNS;...)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write Chrome trace-event JSON to this file")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write aggregated metrics to this file (.csv selects CSV)")
	flag.StringVar(&o.pprofOut, "pprof", "", "write a CPU profile to this file")
	flag.Parse()
	if err := o.validate(); err != nil {
		os.Exit(cli.Usage(tool, err))
	}
	os.Exit(run(o))
}

// run executes the simulation and returns the process exit code. Envelope
// violations in strict mode (and any internal failure) surface as panics;
// they are condensed into a one-line diagnostic rather than a stack trace.
func run(o options) (code int) {
	defer func() {
		if r := recover(); r != nil {
			code = cli.Fatal(tool, r)
		}
	}()

	if o.pprofOut != "" {
		f, err := os.Create(o.pprofOut)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// Output files are opened before anything is built or simulated, so an
	// unwritable path fails in milliseconds instead of after a full run.
	var traceFile, metricsFile *os.File
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return fail(err)
		}
		traceFile = f
	}
	if o.metricsOut != "" {
		f, err := os.Create(o.metricsOut)
		if err != nil {
			return fail(err)
		}
		metricsFile = f
	}

	m, uc, err := buildUseCase(o)
	if err != nil {
		return fail(err)
	}
	if uc == nil {
		return cli.Usage(tool, errors.New("need -spec, -random or -scenario"))
	}

	campaignMode := o.faults != "" || o.skewPS != 0 || o.rateFaults()
	if o.backend != "aelite" {
		if campaignMode {
			return cli.Usage(tool, errors.New("fault campaigns need the aelite backend"))
		}
		return runSeamBackend(o, m, uc, traceFile, metricsFile)
	}

	if o.runs > 1 {
		return runCampaignSweep(o)
	}

	// Campaigns always carry the TDM ownership probes: a corrupted header
	// re-routes a packet into slots reserved for someone else, which only
	// the allocation-aware probes can attribute.
	layout, wordBytes, err := layoutFor(o.cols, o.rows)
	if err != nil {
		return fail(err)
	}
	cfg := core.Config{FreqMHz: o.freq, Probes: o.probes || campaignMode, Transactional: o.tx,
		Reliable: o.reliable, SkewOverridePS: o.skewPS, FastReplay: o.fast, Allocator: o.alloc,
		Layout: layout, WordBytes: wordBytes}
	switch o.mode {
	case "synchronous":
	case "mesochronous":
		cfg.Mode = core.Mesochronous
	case "asynchronous":
		cfg.Mode = core.Asynchronous
	default:
		return cli.Usage(tool, fmt.Errorf("unknown mode %q", o.mode))
	}

	// In a campaign, a collector switches every envelope check from
	// fail-fast panic to graceful violation recording; -strict keeps the
	// panics so the first violation halts the run.
	var collector *fault.Collector
	if campaignMode && !o.strict {
		collector = fault.NewCollector()
		cfg.FaultReporter = collector
	}

	core.PrepareTopology(m, cfg)
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		return fail(err)
	}

	// Tracing: one bus feeds the Chrome sink, the metrics sink and the
	// conformance auditor alike.
	var chrome *trace.Chrome
	var metrics *trace.Metrics
	var auditor *audit.Auditor
	var auditCol *fault.Collector
	if o.traceOut != "" || o.metricsOut != "" || o.audit {
		bus := trace.NewBus()
		if o.traceOut != "" {
			chrome = trace.NewChrome(bus)
			chrome.SetFlitCycle(phit.FlitWords * int64(n.BaseClock().Period))
		}
		if o.metricsOut != "" {
			metrics = trace.NewMetrics(bus)
		}
		if o.audit {
			// The auditor's reporter is kept separate from the campaign
			// collector: expected fault-campaign violations must never be
			// mixed with guarantee breaches. -strict keeps the fail-fast
			// nil reporter.
			var audRep fault.Reporter
			if !o.strict {
				auditCol = fault.NewCollector()
				audRep = auditCol
			}
			auditor = audit.Attach(n, bus, audRep, audit.Options{})
		}
		n.AttachTracer(bus)
	}

	var reconfigActs []core.TimedAction
	if o.reconfig != "" {
		steps, err := parseReconfigScript(o.reconfig)
		if err != nil {
			return fail(err)
		}
		reconfigActs = reconfigActions(steps, auditor)
	}

	var rep *core.Report
	var summary *fault.Summary
	runNet := func() error {
		if len(reconfigActs) == 0 {
			rep = n.Run(o.warmup, o.measure)
			return nil
		}
		var err error
		rep, err = n.RunTimed(o.warmup, o.measure, reconfigActs)
		return err
	}
	if campaignMode {
		plan, err := o.faultPlan(o.faultSeed)
		if err != nil {
			return fail(err)
		}
		var runErr error
		summary, err = fault.Execute(plan, collector, n, func() {
			runErr = runNet()
		})
		if err != nil {
			return fail(err)
		}
		if runErr != nil {
			return fail(runErr)
		}
	} else if err := runNet(); err != nil {
		return fail(err)
	}
	rep.Write(os.Stdout)
	if chrome != nil {
		if err := writeTrace(traceFile, chrome); err != nil {
			return fail(err)
		}
	}
	if metrics != nil {
		mrep := metrics.Report(int64(n.Engine().Now()), int64(n.BaseClock().Period))
		if err := writeMetrics(metricsFile, o.metricsOut, mrep); err != nil {
			return fail(err)
		}
	}
	auditFailed := false
	if auditor != nil {
		fmt.Println()
		auditor.WriteSummary(os.Stdout)
		if auditor.Violations() > 0 {
			for _, v := range auditCol.Violations() {
				fmt.Fprintln(os.Stderr, "aelite-sim: audit:", v)
			}
			auditFailed = true
		}
	}
	if summary != nil {
		fmt.Println()
		summary.Write(os.Stdout)
		if auditFailed {
			return 1
		}
		return 0
	}
	if code := verdict(rep); code != 0 {
		return code
	}
	if auditFailed {
		return 1
	}
	return 0
}

// runSeamBackend builds and runs a non-aelite backend through the
// backend seam. The "be" alias keeps its historical output — the
// verdict line only — byte-identical; newer backends print the full
// per-connection report first. Tracing, metrics and (for bounds-carrying
// backends) the conformance auditor ride the same shared bus wiring the
// aelite path uses.
func runSeamBackend(o options, m *topology.Mesh, uc *spec.UseCase, traceFile, metricsFile *os.File) int {
	name := o.canonicalBackend()
	bk, err := backend.ByName(name)
	if err != nil {
		return cli.Usage(tool, err)
	}
	inst, err := bk.Build(m, uc, backend.Params{FreqMHz: o.freq, Transactional: o.tx})
	if err != nil {
		return fail(err)
	}

	var chrome *trace.Chrome
	var metrics *trace.Metrics
	var auditor *audit.Auditor
	var auditCol *fault.Collector
	if o.traceOut != "" || o.metricsOut != "" || o.audit {
		bus := trace.NewBus()
		if o.traceOut != "" {
			chrome = trace.NewChrome(bus)
			chrome.SetFlitCycle(phit.FlitWords * int64(clock.PeriodFromMHz(o.freq)))
		}
		if o.metricsOut != "" {
			metrics = trace.NewMetrics(bus)
		}
		if o.audit {
			if !o.strict {
				auditCol = fault.NewCollector()
			}
			auditor = inst.Audit(bus, auditCol, audit.Options{})
		}
		inst.AttachTracer(bus)
	}

	rep := inst.Run(o.warmup, o.measure)
	if o.backend != "be" {
		rep.Write(os.Stdout)
	}
	if chrome != nil {
		if err := writeTrace(traceFile, chrome); err != nil {
			return fail(err)
		}
	}
	if metrics != nil {
		now := clock.Time(o.warmup*float64(clock.Nanosecond)) + clock.Time(o.measure*float64(clock.Nanosecond))
		mrep := metrics.Report(int64(now), int64(clock.PeriodFromMHz(o.freq)))
		if err := writeMetrics(metricsFile, o.metricsOut, mrep); err != nil {
			return fail(err)
		}
	}
	code := verdict(rep)
	if auditor != nil {
		fmt.Println()
		auditor.WriteSummary(os.Stdout)
		if auditor.Violations() > 0 {
			if auditCol != nil {
				for _, v := range auditCol.Violations() {
					fmt.Fprintln(os.Stderr, "aelite-sim: audit:", v)
				}
			}
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

// layoutFor picks the header layout the mesh diameter needs: the worst
// minimal route visits cols+rows-1 routers. The paper's 32-bit layout
// encodes 7 hops; the 64-bit WideLayout (8-byte words) 16. Beyond that
// no runnable header exists — allocation-only planning (aelite-exp
// scale) is the tool at that size.
func layoutFor(cols, rows int) (phit.HeaderLayout, int, error) {
	ports := cols + rows - 1
	switch {
	case ports <= phit.DefaultLayout.MaxHops():
		return phit.DefaultLayout, 4, nil
	case ports <= phit.WideLayout.MaxHops():
		return phit.WideLayout, 8, nil
	}
	return phit.HeaderLayout{}, 0, fmt.Errorf(
		"a %dx%d mesh needs %d-hop headers; the widest layout encodes %d (allocation-only planning via aelite-exp scale has no such cap)",
		cols, rows, ports, phit.WideLayout.MaxHops())
}

// buildUseCase assembles the mesh and use case from the flags. A nil use
// case (with nil error) means neither -spec nor -random was given. Sweep
// workers call it once each: a use case is mutated during mapping and
// build-time budget negotiation, so it must never be shared across
// engines.
func buildUseCase(o options) (*topology.Mesh, *spec.UseCase, error) {
	m := topology.NewMesh(o.cols, o.rows, o.nis)
	var uc *spec.UseCase
	switch {
	case o.scenario != "":
		fam, err := scenario.ParseFamily(o.scenario)
		if err != nil {
			return nil, nil, err
		}
		cfg := scenario.Default(fam, o.cols, o.rows, o.conns, o.seed)
		cfg.NIsPerRouter = o.nis
		cfg.FreqMHz = o.freq
		if _, wordBytes, err := layoutFor(o.cols, o.rows); err == nil {
			// Quantisation must target the word width the network will
			// actually run at (the wide layout carries 8-byte words).
			cfg.WordBytes = wordBytes
		}
		s, err := scenario.Generate(cfg)
		if err != nil {
			return nil, nil, err
		}
		uc = s.UseCase
	case o.specPath != "":
		var err error
		uc, err = spec.Load(o.specPath)
		if err != nil {
			return nil, nil, err
		}
	case o.random > 0:
		uc = spec.Random(spec.RandomConfig{
			Name: "random", Seed: o.seed,
			IPs: o.cols * o.rows * o.nis, Apps: 4, Conns: o.random,
			MinRateMBps: 10, MaxRateMBps: 300, HeavyFraction: 0.1, HeavyMinRateMBps: 40,
			MinLatencyNs: 150, MaxLatencyNs: 900,
		})
	default:
		return m, nil, nil
	}
	unmapped := false
	for _, ip := range uc.IPs {
		if ip.NI == topology.Invalid {
			unmapped = true
		}
	}
	if unmapped {
		spec.MapIPsByTraffic(uc, m)
	}
	return m, uc, nil
}

// campaignPoint is one worker of a -runs sweep: it builds a private
// network and engine, arms the campaign with the given fault seed, runs
// it, and renders the connection report plus campaign summary. A strict-
// mode envelope violation (or any other panic) is returned as an error so
// one failed point cannot tear down the whole sweep.
func campaignPoint(o options, faultSeed int64) (out []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fatal: %v", r)
		}
	}()
	m, uc, err := buildUseCase(o)
	if err != nil {
		return nil, err
	}
	layout, wordBytes, err := layoutFor(o.cols, o.rows)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{FreqMHz: o.freq, Probes: true, Transactional: o.tx,
		Reliable: o.reliable, SkewOverridePS: o.skewPS, FastReplay: o.fast, Allocator: o.alloc,
		Layout: layout, WordBytes: wordBytes}
	if o.mode == "mesochronous" {
		cfg.Mode = core.Mesochronous
	} else if o.mode == "asynchronous" {
		cfg.Mode = core.Asynchronous
	}
	var collector *fault.Collector
	if !o.strict {
		collector = fault.NewCollector()
		cfg.FaultReporter = collector
	}
	core.PrepareTopology(m, cfg)
	n, err := core.Build(m, uc, cfg)
	if err != nil {
		return nil, err
	}
	plan, err := o.faultPlan(faultSeed)
	if err != nil {
		return nil, err
	}
	var rep *core.Report
	summary, err := fault.Execute(plan, collector, n, func() {
		rep = n.Run(o.warmup, o.measure)
	})
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	rep.Write(&b)
	fmt.Fprintln(&b)
	summary.Write(&b)
	return b.Bytes(), nil
}

// runCampaignSweep fans o.runs campaign points with consecutive fault
// seeds across the worker pool and prints each point's rendered output in
// seed order — byte-identical at every -j value.
func runCampaignSweep(o options) int {
	outs, err := parallel.Map(parallel.Jobs(o.jobs), o.runs, func(i int) ([]byte, error) {
		return campaignPoint(o, o.faultSeed+int64(i))
	})
	if err != nil {
		return fail(err)
	}
	for i, out := range outs {
		fmt.Printf("== campaign %d/%d (fault seed %d) ==\n", i+1, o.runs, o.faultSeed+int64(i))
		os.Stdout.Write(out)
		if i < len(outs)-1 {
			fmt.Println()
		}
	}
	return 0
}

func verdict(rep *core.Report) int {
	if rep.AllMet() {
		fmt.Println("\nall requirements met")
		return 0
	}
	fmt.Printf("\n%d requirements MISSED\n", len(rep.Violations()))
	return 1
}

func writeTrace(f *os.File, c *trace.Chrome) error {
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetrics(f *os.File, path string, rep *trace.Report) error {
	var err error
	if strings.HasSuffix(path, ".csv") {
		err = rep.WriteCSV(f)
	} else {
		err = rep.WriteJSON(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tool names this command in every cli diagnostic.
const tool = "aelite-sim"

func fail(err error) int {
	return cli.Failure(tool, err)
}
