package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/admission"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/phit"
	"repro/internal/spec"
)

// A reconfigStep is one parsed -reconfig action: a connection close or an
// admission-controlled open, at a given instant inside the measurement
// window.
type reconfigStep struct {
	atNs  float64
	close bool

	conn phit.ConnID // close: the connection to stop

	src, dst spec.IPID // open: the endpoints
	bw, lat  float64   // open: required Mbyte/s and latency budget ns
}

// parseReconfigScript parses the -reconfig flag: semicolon-separated
// actions, each close@TIMEns:CONN or open@TIMEns:SRC:DST:MBPS:LATNS.
// It follows the -faults op@TIME:args idiom.
func parseReconfigScript(s string) ([]reconfigStep, error) {
	var out []reconfigStep
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("action %q: want close@TIMEns:CONN or open@TIMEns:SRC:DST:MBPS:LATNS", part)
		}
		fields := strings.Split(rest, ":")
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("action %q: bad time %q (ns into the measurement window)", part, fields[0])
		}
		st := reconfigStep{atNs: at}
		switch op {
		case "close":
			if len(fields) != 2 {
				return nil, fmt.Errorf("action %q: want close@TIMEns:CONN", part)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id <= 0 {
				return nil, fmt.Errorf("action %q: bad connection id %q", part, fields[1])
			}
			st.close = true
			st.conn = phit.ConnID(id)
		case "open":
			if len(fields) != 5 {
				return nil, fmt.Errorf("action %q: want open@TIMEns:SRC:DST:MBPS:LATNS", part)
			}
			src, err1 := strconv.Atoi(fields[1])
			dst, err2 := strconv.Atoi(fields[2])
			bw, err3 := strconv.ParseFloat(fields[3], 64)
			lat, err4 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("action %q: bad endpoint IP ids %q:%q", part, fields[1], fields[2])
			}
			if err3 != nil || bw <= 0 || err4 != nil || lat <= 0 {
				return nil, fmt.Errorf("action %q: bandwidth and latency must be positive numbers", part)
			}
			st.src, st.dst = spec.IPID(src), spec.IPID(dst)
			st.bw, st.lat = bw, lat
		default:
			return nil, fmt.Errorf("action %q: unknown op %q (close | open)", part, op)
		}
		out = append(out, st)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty script")
	}
	return out, nil
}

// reconfigActions turns parsed steps into RunTimed actions. Closes drain
// and release; opens run admission control and print the typed decision —
// an inadmissible request is an answer, not an error, and leaves the
// network untouched. The auditor (when attached) is resynchronised after
// every action that changed the allocation.
func reconfigActions(steps []reconfigStep, aud *audit.Auditor) []core.TimedAction {
	var acts []core.TimedAction
	for _, st := range steps {
		st := st
		acts = append(acts, core.TimedAction{AtNs: st.atNs, Do: func(n *core.Network) error {
			if st.close {
				if err := n.CloseConnection(st.conn); err != nil {
					return err
				}
				fmt.Fprintf(os.Stdout, "reconfig @%.0fns: closed connection %d (slots released)\n", st.atNs, st.conn)
				if aud != nil {
					aud.Resync(n)
				}
				return nil
			}
			c := spec.Connection{
				ID: n.FreshConnID(), Src: st.src, Dst: st.dst,
				BandwidthMBps: st.bw, MaxLatencyNs: st.lat,
			}
			d, err := admission.Admit(n, c, admission.Options{})
			if err != nil {
				return err
			}
			if !d.Admissible {
				fmt.Fprintf(os.Stdout, "reconfig @%.0fns: open IP%d>IP%d %.1fMB/s %.0fns REJECTED: %s (%s)\n",
					st.atNs, st.src, st.dst, st.bw, st.lat, d.Reason, d.Detail)
				return nil
			}
			fmt.Fprintf(os.Stdout, "reconfig @%.0fns: open IP%d>IP%d admitted as connection %d: %.1fMB/s guaranteed, bound %.1fns, %d+%d slots\n",
				st.atNs, st.src, st.dst, c.ID, d.GuaranteeMBps, d.LatencyBoundNs, d.DataSlots, d.RevSlots)
			if aud != nil {
				aud.Resync(n)
			}
			return nil
		}})
	}
	return acts
}
