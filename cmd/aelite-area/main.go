// Command aelite-area queries the calibrated 90 nm area/frequency model
// (see internal/area): router cell area and maximum frequency for a given
// arity, data width and target frequency, plus the mesochronous-link and
// GS+BE baseline numbers.
//
// Usage:
//
//	aelite-area [-arity N] [-width BITS] [-target MHZ] [-custom-fifo]
package main

import (
	"flag"
	"fmt"

	"repro/internal/area"
)

func main() {
	arity := flag.Int("arity", 5, "router arity (input and output ports)")
	width := flag.Int("width", 32, "data width in bits")
	target := flag.Float64("target", 600, "synthesis target frequency in MHz")
	custom := flag.Bool("custom-fifo", false, "use the custom FIFO cells of [18] instead of standard cells")
	flag.Parse()

	fmax := area.RouterFmaxMHz(*arity, *width)
	fmt.Printf("aelite router, arity %d, %d-bit data width (90 nm low-power, worst case):\n", *arity, *width)
	fmt.Printf("  maximum frequency        %8.0f MHz\n", fmax)
	fmt.Printf("  area at %4.0f MHz         %8.0f µm²  (%.4f mm²)\n",
		*target, area.RouterArea(*arity, *width, *target), area.RouterArea(*arity, *width, *target)/1e6)
	fmt.Printf("  area at fmax             %8.0f µm²  (%.4f mm²)\n",
		area.RouterMaxArea(*arity, *width), area.RouterMaxArea(*arity, *width)/1e6)
	fmt.Printf("  raw throughput at fmax   %8.1f Gbyte/s one-way (%.1f full duplex)\n",
		area.RawThroughputGBps(*arity, *width, fmax), 2*area.RawThroughputGBps(*arity, *width, fmax))

	fifo := area.FIFOArea(area.LinkFIFOWords, *width, *custom)
	kind := "standard-cell"
	if *custom {
		kind = "custom"
	}
	fmt.Printf("mesochronous link pipeline stage (%s FIFO):\n", kind)
	fmt.Printf("  4-word bi-sync FIFO      %8.0f µm²\n", fifo)
	fmt.Printf("  stage (FIFO + FSM)       %8.0f µm²\n", area.LinkStageArea(*width, *custom))
	fmt.Printf("  complete router + links  %8.0f µm²  (%.4f mm²)\n",
		area.MesochronousRouterArea(*arity, *width, *target, *custom),
		area.MesochronousRouterArea(*arity, *width, *target, *custom)/1e6)

	fmt.Printf("Æthereal GS+BE baseline (same arity/width):\n")
	fmt.Printf("  area                     %8.0f µm²  (%.1fx aelite)\n",
		area.GSBERouterArea(*arity, *width),
		area.GSBERouterArea(*arity, *width)/area.RouterNominalArea(*arity, *width))
	fmt.Printf("  maximum frequency        %8.0f MHz  (aelite is %.1fx faster)\n",
		area.GSBERouterFmaxMHz(*arity, *width), area.GSBESpeedRatio)
}
