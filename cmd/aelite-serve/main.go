// Command aelite-serve runs the crash-safe simulation control plane: an
// HTTP/JSON API for submitting scenario and scale campaigns, backed by a
// supervised scheduler with retry/backoff, a fsync'd journal, and
// graceful SIGTERM drain. Start with -resume after a crash to skip every
// journaled shard and reproduce the same artifacts byte for byte.
//
//	aelite-serve -addr :8080 -journal serve.journal -artifacts artifacts/
//	curl -s localhost:8080/api/jobs -d '{"family":"uniform","shards":4}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

const tool = "aelite-serve"

func main() {
	code := run()
	os.Exit(code)
}

func run() (code int) {
	defer func() {
		if r := recover(); r != nil {
			code = cli.Fatal(tool, r)
		}
	}()

	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	journalPath := flag.String("journal", "", "append-only journal path (empty: ephemeral, no crash safety)")
	artifacts := flag.String("artifacts", "", "directory for completed-job artifacts (empty: memory only)")
	workers := flag.Int("workers", 2, "concurrent jobs")
	queue := flag.Int("queue", 64, "admission queue bound")
	retries := flag.Int("retries", 3, "per-shard retry budget for transient failures")
	resume := flag.Bool("resume", false, "replay the journal and requeue unfinished jobs before serving")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT")
	deadline := flag.Duration("deadline", 0, "default per-job deadline (0: none)")
	chaosRate := flag.Float64("chaos-rate", 0, "seeded fault-injection probability per shard attempt (0 disables)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed")
	flag.Parse()

	switch {
	case flag.NArg() > 0:
		return cli.Usage(tool, fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	case *workers < 1:
		return cli.Usage(tool, fmt.Errorf("-workers %d must be at least 1", *workers))
	case *queue < 1:
		return cli.Usage(tool, fmt.Errorf("-queue %d must be at least 1", *queue))
	case *retries < 0:
		return cli.Usage(tool, fmt.Errorf("-retries %d must not be negative", *retries))
	case *chaosRate < 0 || *chaosRate > 1:
		return cli.Usage(tool, fmt.Errorf("-chaos-rate %g outside [0, 1]", *chaosRate))
	case *resume && *journalPath == "":
		return cli.Usage(tool, errors.New("-resume needs -journal"))
	}

	cfg := serve.SchedulerConfig{
		Workers:         *workers,
		QueueLimit:      *queue,
		DefaultDeadline: *deadline,
		ArtifactsDir:    *artifacts,
		Chaos:           serve.ChaosConfig{Rate: *chaosRate, Seed: *chaosSeed},
	}
	cfg.Retry = serve.DefaultRetryPolicy()
	cfg.Retry.MaxRetries = *retries

	// Resume replays the journal BEFORE the journal reopens for append,
	// then the scheduler skips every shard the previous life completed.
	var resumeState *serve.ResumeState
	if *resume {
		st, err := serve.ReplayJournal(*journalPath)
		if err != nil {
			var corr *serve.Corruption
			if !errors.As(err, &corr) {
				return cli.Failure(tool, err)
			}
			// Typed, salvageable corruption: report every defect and resume
			// from the valid records. Nothing is lost silently.
			for _, issue := range corr.Issues {
				fmt.Fprintf(os.Stderr, "%s: journal: %v\n", tool, issue)
			}
		}
		resumeState = st
	}

	if *journalPath != "" {
		j, err := serve.OpenJournal(*journalPath)
		if err != nil {
			return cli.Failure(tool, err)
		}
		defer j.Close()
		cfg.Journal = j
	}

	sched := serve.NewScheduler(cfg)
	if resumeState != nil {
		requeued, skipped, err := sched.Resume(resumeState)
		if err != nil {
			return cli.Failure(tool, err)
		}
		fmt.Printf("%s: resumed %d unfinished job(s), skipping %d journaled shard(s)\n", tool, requeued, skipped)
	}
	sched.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return cli.Failure(tool, err)
	}
	httpSrv := &http.Server{Handler: serve.NewServer(sched), ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("%s: listening on %s\n", tool, ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return cli.Failure(tool, err)
	case s := <-sig:
		fmt.Printf("%s: %v: draining (deadline %s)\n", tool, s, *drainTimeout)
	}

	// Graceful drain: stop accepting, let in-flight jobs finish within the
	// deadline, checkpoint the rest, then report and exit 0.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer shutCancel()
	_ = httpSrv.Shutdown(shutCtx)
	sum := sched.Drain(*drainTimeout)
	fmt.Printf("%s: drained in %dms: %d done, %d failed, %d cancelled, %d checkpointed, %d force-cancelled; "+
		"%d retries, %d panics recovered, %d chaos faults injected, %dms total backoff\n",
		tool, sum.DrainMs, sum.Done, sum.Failed, sum.Cancelled, sum.Checkpointed, sum.ForceCancelled,
		sum.Retries, sum.Panics, sum.ChaosInjected, sum.BackoffTotalMs)
	return cli.ExitOK
}
