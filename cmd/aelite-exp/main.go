// Command aelite-exp regenerates the tables and figures of the paper's
// evaluation (Section VII, Figs. 5 and 6). Each subcommand prints one
// artefact; "all" prints everything, as recorded in EXPERIMENTS.md.
//
// Usage:
//
//	aelite-exp fig5        frequency/area trade-off (Fig. 5)
//	aelite-exp fig6a       area & fmax vs arity (Fig. 6a)
//	aelite-exp fig6b       area & fmax vs data width (Fig. 6b)
//	aelite-exp links       mesochronous link & router area table (Sec. V)
//	aelite-exp throughput  raw throughput table (Sec. VII)
//	aelite-exp sec7        200-connection aelite vs BE comparison
//	aelite-exp scan        best-effort frequency scan (>900 MHz crossover)
//	aelite-exp power       schedule-driven router sleep study (extension)
//	aelite-exp hetero      HSDF model of the wrapped NoC (extension)
//	aelite-exp recovery    bit-flip recovery campaign (reliability layer)
//	aelite-exp conformance guarantee-conformance sweep (audit layer)
//	aelite-exp reconfig    online-reconfiguration study (admission control,
//	                       undisturbed service, self-healing reroute)
//	aelite-exp scale       large-scale study: generator families x mesh
//	                       sizes x allocators (greedy vs rip-up), reporting
//	                       allocation success, allocator runtime, bound
//	                       tightness, audit violations and replay engagement
//	aelite-exp compare     N-backend study: identical generated workloads
//	                       through every registered backend (aelite,
//	                       Æthereal GS+BE, routerless ring overlay) under
//	                       the shared trace bus and conformance auditor,
//	                       contrasting throughput, latency, bounds and area
//	aelite-exp all         everything above
//
// Flags:
//
//	-seed N       workload seed for sec7/scan/scale (default the documented
//	              one)
//	-measure NS   measurement window in ns (default 60000)
//	-freq MHZ     frequency for sec7 (default 500)
//	-j N          parallel sweep workers (default all CPUs; must be at
//	              least 1; results are byte-identical at every worker count)
//	-verbose      print the full 200-connection report tables
//	-out FILE     write the reconfig/scale/compare study's JSON artifact to
//	              FILE; only meaningful with those experiments
//	-smoke        shrink the scale/compare study to its CI gate
package main

import (
	"flag"
	"fmt"
	"os"

	"runtime"

	"repro/internal/cli"
	"repro/internal/experiments"
)

// tool names this command in every cli diagnostic.
const tool = "aelite-exp"

func main() {
	seed := flag.Int64("seed", experiments.Sec7Seed, "workload seed for the Section VII experiment")
	measure := flag.Float64("measure", experiments.Sec7MeasureNs, "measurement window in ns")
	freq := flag.Float64("freq", 500, "frequency in MHz for the sec7 comparison")
	jobs := flag.Int("j", runtime.NumCPU(), "parallel sweep workers")
	verbose := flag.Bool("verbose", false, "print full per-connection reports")
	jsonOut := flag.String("out", "", "write the reconfig/scale JSON artifact to this file")
	fast := flag.Bool("fast", false, "hyperperiod-compiled fast replay for GS networks (cycle-accurate fallback where not provably periodic)")
	smoke := flag.Bool("smoke", false, "shrink the scale study to its CI smoke configuration")
	flag.Parse()
	// Malformed invocations are rejected up front with one-line
	// diagnostics and exit code 2, matching aelite-sim's contract.
	if *measure <= 0 {
		os.Exit(cli.Usage(tool, fmt.Errorf("-measure %g must be positive", *measure)))
	}
	if *freq <= 0 {
		os.Exit(cli.Usage(tool, fmt.Errorf("-freq %g must be positive", *freq)))
	}
	if *jobs < 1 {
		// A zero worker count used to clamp silently; aelite-sim's flag
		// contract (reject, exit 2) applies here too.
		os.Exit(cli.Usage(tool, fmt.Errorf("-j %d must be at least 1", *jobs)))
	}
	if flag.NArg() > 1 {
		os.Exit(cli.Usage(tool, fmt.Errorf("one experiment per invocation (got %q)", flag.Args())))
	}
	experiments.FastReplay = *fast
	j := *jobs

	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	out := os.Stdout
	run := func(name string, f func() error) {
		if cmd != "all" && cmd != name {
			return
		}
		if err := f(); err != nil {
			os.Exit(cli.Failure(tool, fmt.Errorf("%s: %w", name, err)))
		}
		fmt.Fprintln(out)
	}

	known := map[string]bool{"all": true, "fig5": true, "fig6a": true, "fig6b": true,
		"links": true, "throughput": true, "sec7": true, "scan": true,
		"power": true, "hetero": true, "recovery": true, "conformance": true,
		"reconfig": true, "scale": true, "compare": true}
	if !known[cmd] {
		flag.Usage()
		os.Exit(cli.Usage(tool, fmt.Errorf("unknown experiment %q", cmd)))
	}

	run("fig5", func() error { experiments.WriteFig5(out); return nil })
	run("fig6a", func() error { experiments.WriteFig6a(out); return nil })
	run("fig6b", func() error { experiments.WriteFig6b(out); return nil })
	run("links", func() error { experiments.WriteLinkTable(out); return nil })
	run("throughput", func() error { experiments.WriteThroughput(out); return nil })
	run("sec7", func() error {
		cmp, gs, be, err := experiments.Compare(*seed, *freq, *measure, j)
		if err != nil {
			return err
		}
		experiments.WriteComparison(out, cmp)
		if *verbose {
			fmt.Fprintln(out, "\n--- aelite (guaranteed services) ---")
			gs.Write(out)
			fmt.Fprintln(out, "\n--- Æthereal best effort ---")
			be.Write(out)
		}
		return nil
	})
	run("power", func() error {
		rep, err := experiments.PowerStudy(*seed, *freq)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "-- all four applications running --")
		experiments.WritePower(out, rep)
		one, err := experiments.PowerStudyApp(*seed, *freq, 1)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "\n-- only application 1 running (standby-style operating point) --")
		experiments.WritePower(out, one)
		return nil
	})
	run("hetero", func() error { return experiments.WriteHeterochronous(out) })
	run("recovery", func() error {
		cfg := experiments.DefaultRecoveryConfig()
		cfg.Seed = *seed
		fmt.Fprintf(out, "Bit-flip recovery campaign: %d points, bitflip %.4f drop %.4f per link\n",
			cfg.Points, cfg.BitFlip, cfg.Drop)
		return experiments.WriteRecovery(out, cfg, j)
	})
	run("reconfig", func() error {
		cfg := experiments.DefaultReconfigConfig()
		cfg.Seed = *seed
		sum, err := experiments.ReconfigStudy(cfg, j)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.RenderReconfig(sum))
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := experiments.WriteReconfigJSON(f, sum); err != nil {
				return err
			}
		}
		// The artifact is written before gating so a failing run still
		// leaves the evidence behind.
		if sum.Violations > 0 {
			return fmt.Errorf("%d violations: %s", sum.Violations, sum.Failures[0])
		}
		return nil
	})
	run("scale", func() error {
		cfg := experiments.DefaultScaleConfig()
		if *smoke {
			cfg = experiments.SmokeScaleConfig()
		}
		cfg.Seed = *seed
		rep, err := experiments.ScaleStudy(cfg, j)
		if err != nil {
			return err
		}
		rep.Render(out)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rep.WriteJSON(f); err != nil {
				return err
			}
		}
		// The artifact is written before gating so a failing run still
		// leaves the evidence behind.
		return rep.Verify()
	})
	run("compare", func() error {
		cfg := experiments.DefaultCompareConfig()
		if *smoke {
			cfg = experiments.SmokeCompareConfig()
		}
		cfg.Seed = *seed
		rep, err := experiments.CompareStudy(cfg, j)
		if err != nil {
			return err
		}
		rep.Render(out)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := rep.WriteJSON(f); err != nil {
				return err
			}
		}
		// The artifact is written before gating so a failing run still
		// leaves the evidence behind.
		return rep.Verify()
	})
	run("conformance", func() error {
		cfg := experiments.DefaultConformanceConfig()
		cfg.Seed = *seed
		fmt.Fprintf(out, "Guarantee-conformance sweep: tables %v under all clocking modes, every flit audited\n",
			cfg.TableSizes)
		return experiments.WriteConformance(out, cfg, j)
	})
	run("scan", func() error {
		points, crossover, err := experiments.FrequencyScan(*seed, nil, *measure, j)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Best-effort frequency scan (offered rate %.0fx the GS rates):\n",
			float64(experiments.Sec7BEOpportunism))
		fmt.Fprintf(out, "%10s %12s %14s\n", "MHz", "violations", "worst excess")
		for _, p := range points {
			fmt.Fprintf(out, "%10.0f %12d %11.0f ns\n", p.FreqMHz, p.Violations, p.WorstExcessNs)
		}
		if crossover > 0 {
			fmt.Fprintf(out, "all requirements met from %.0f MHz (aelite needs 500 MHz; paper reports >900 MHz for BE)\n", crossover)
		} else {
			fmt.Fprintln(out, "requirements not met at any scanned frequency")
		}
		return nil
	})
}
